// Extracted parasitics database.
//
// Exactly the information the paper's flow consumes: per net a lumped
// grounded wire capacitance and wire resistance, and a list of coupling
// capacitances to adjacent nets (paper §2: the coupling model "is
// restricted to lumped capacitances", wire delay is handled by Elmore).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace xtalk::extract {

/// One lumped coupling capacitor between two nets.
struct CouplingCap {
  netlist::NetId net_a = netlist::kNoNet;
  netlist::NetId net_b = netlist::kNoNet;
  double cap = 0.0;            ///< [F]
  double overlap_length = 0.0; ///< parallel run length that produced it [m]
};

/// A coupling as seen from one side (victim side view).
struct NeighborCap {
  netlist::NetId neighbor = netlist::kNoNet;
  double cap = 0.0;  ///< [F]
};

/// Per driver->sink connection wire RC for Elmore delay.
struct SinkWire {
  netlist::PinRef sink;
  double resistance = 0.0;  ///< driver->sink path resistance [Ohm]
  double capacitance = 0.0; ///< [F] wire cap of this connection
  /// Wire-only Elmore delay of this sink on the net's RC tree [s]
  /// (rc_tree.hpp); the receiver pin load adds resistance * pin_cap on
  /// top. Negative = not computed, fall back to the lumped-pi formula
  /// resistance * capacitance / 2.
  double wire_elmore = -1.0;
};

struct NetParasitics {
  double wire_cap = 0.0;        ///< total grounded wire cap [F]
  double wire_length = 0.0;     ///< [m]
  std::vector<NeighborCap> couplings;
  std::vector<SinkWire> sink_wires;

  /// Sum of all coupling caps on this net [F].
  double total_coupling_cap() const {
    double c = 0.0;
    for (const NeighborCap& n : couplings) c += n.cap;
    return c;
  }
};

class Parasitics {
 public:
  explicit Parasitics(std::size_t num_nets) : nets_(num_nets) {}

  const NetParasitics& net(netlist::NetId id) const { return nets_[id]; }
  NetParasitics& net(netlist::NetId id) { return nets_[id]; }
  std::size_t num_nets() const { return nets_.size(); }

  const std::vector<CouplingCap>& coupling_pairs() const { return pairs_; }

  /// Register a coupling capacitor (adds the symmetric view to both nets).
  void add_coupling(netlist::NetId a, netlist::NetId b, double cap,
                    double overlap);

  // --- ECO mutation (coupling adjacency index) -----------------------------
  // The pair index maps an unordered net pair to its CouplingCap, built
  // lazily on first edit and maintained afterwards. The extractor
  // aggregates overlaps per pair, so pairs are unique in extracted
  // databases; on a hand-built database with duplicate pairs the editors
  // below act on the first occurrence.

  /// The coupling capacitor between two nets, or nullptr if none exists.
  const CouplingCap* find_coupling(netlist::NetId a, netlist::NetId b) const;
  /// Add a coupling capacitor or change the value of an existing one,
  /// keeping both per-net neighbor views in sync.
  void set_coupling(netlist::NetId a, netlist::NetId b, double cap);
  /// Remove a coupling capacitor; throws std::invalid_argument if the pair
  /// has none.
  void remove_coupling(netlist::NetId a, netlist::NetId b);

  /// Aggregate statistics used in reports.
  double total_wire_cap() const;
  double total_coupling_cap() const;

 private:
  static std::uint64_t pair_key(netlist::NetId a, netlist::NetId b);
  void ensure_index() const;

  std::vector<NetParasitics> nets_;
  std::vector<CouplingCap> pairs_;
  /// pair_key -> index into pairs_; lazily built, invalidated by removal.
  mutable std::unordered_map<std::uint64_t, std::size_t> pair_index_;
  mutable bool index_valid_ = false;
};

/// Copy-on-write overlay over an immutable base Parasitics, mirroring
/// netlist::NetlistOverlay: ECO sessions edit a private copy while the base
/// design (and the oracle's from-scratch baseline) stays untouched.
class ParasiticsOverlay {
 public:
  explicit ParasiticsOverlay(const Parasitics& base) : base_(&base) {}

  const Parasitics& get() const { return own_ ? *own_ : *base_; }

  Parasitics& mutate() {
    if (!own_) own_ = std::make_unique<Parasitics>(*base_);
    return *own_;
  }

  bool modified() const { return own_ != nullptr; }

 private:
  const Parasitics* base_;
  std::unique_ptr<Parasitics> own_;
};

}  // namespace xtalk::extract
