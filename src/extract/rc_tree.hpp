// Per-net RC trees and tree Elmore delays.
//
// The router gives every net a trunk along its driver row with one tap and
// vertical drop per sink. Modeling that as independent lumped connections
// double-counts the shared trunk; this module rebuilds the actual tree
// (driver node, trunk nodes at the taps, one branch node per sink), splits
// each wire piece's capacitance onto its end nodes, and computes the exact
// Elmore delay per sink:
//
//   T_sink = sum over edges e on the root->sink path of R_e * C_down(e)
//
// (the paper's wire-delay model, §2: "Wire delays are modeled by the
// widely used Elmore model").
#pragma once

#include <vector>

#include "device/technology.hpp"
#include "layout/placement.hpp"
#include "netlist/netlist.hpp"

namespace xtalk::extract {

struct RcTreeNode {
  std::ptrdiff_t parent = -1;    ///< node index; -1 for the root
  double res_to_parent = 0.0;    ///< [Ohm]
  double cap = 0.0;              ///< grounded wire cap at this node [F]
};

struct RcTreeSink {
  std::size_t node = 0;          ///< tree node the sink pin attaches to
  netlist::PinRef pin;
};

struct RcTree {
  std::vector<RcTreeNode> nodes;  ///< node 0 is the driver (root)
  std::vector<RcTreeSink> sinks;  ///< one per net sink, in net sink order

  double total_cap() const {
    double c = 0.0;
    for (const RcTreeNode& n : nodes) c += n.cap;
    return c;
  }
};

/// Build the RC tree of one net from the placement geometry (trunk on the
/// driver row, taps at each sink's x, vertical drops), using the
/// technology's per-length wire rules. Returns an empty tree for sink-less
/// nets.
RcTree build_rc_tree(const netlist::Netlist& netlist,
                     const layout::Placement& placement,
                     const device::Technology& tech, netlist::NetId net);

/// Elmore delay from the root to every sink [s]. `sink_pin_caps` (parallel
/// to tree.sinks) adds the receiver pin loads at their attachment nodes.
std::vector<double> elmore_delays(const RcTree& tree,
                                  const std::vector<double>& sink_pin_caps);

}  // namespace xtalk::extract
