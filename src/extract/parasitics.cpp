#include "extract/parasitics.hpp"

namespace xtalk::extract {

void Parasitics::add_coupling(netlist::NetId a, netlist::NetId b, double cap,
                              double overlap) {
  pairs_.push_back({a, b, cap, overlap});
  nets_[a].couplings.push_back({b, cap});
  nets_[b].couplings.push_back({a, cap});
}

double Parasitics::total_wire_cap() const {
  double c = 0.0;
  for (const NetParasitics& n : nets_) c += n.wire_cap;
  return c;
}

double Parasitics::total_coupling_cap() const {
  double c = 0.0;
  for (const CouplingCap& p : pairs_) c += p.cap;
  return c;
}

}  // namespace xtalk::extract
