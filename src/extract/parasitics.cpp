#include "extract/parasitics.hpp"

#include <stdexcept>

namespace xtalk::extract {

void Parasitics::add_coupling(netlist::NetId a, netlist::NetId b, double cap,
                              double overlap) {
  if (index_valid_) {
    pair_index_.emplace(pair_key(a, b), pairs_.size());
  }
  pairs_.push_back({a, b, cap, overlap});
  nets_[a].couplings.push_back({b, cap});
  nets_[b].couplings.push_back({a, cap});
}

std::uint64_t Parasitics::pair_key(netlist::NetId a, netlist::NetId b) {
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  return (hi << 32) | lo;
}

void Parasitics::ensure_index() const {
  if (index_valid_) return;
  pair_index_.clear();
  pair_index_.reserve(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    // emplace keeps the first occurrence should duplicates exist.
    pair_index_.emplace(pair_key(pairs_[i].net_a, pairs_[i].net_b), i);
  }
  index_valid_ = true;
}

const CouplingCap* Parasitics::find_coupling(netlist::NetId a,
                                             netlist::NetId b) const {
  ensure_index();
  const auto it = pair_index_.find(pair_key(a, b));
  return it == pair_index_.end() ? nullptr : &pairs_[it->second];
}

void Parasitics::set_coupling(netlist::NetId a, netlist::NetId b, double cap) {
  if (a == b) {
    throw std::invalid_argument("coupling capacitor needs two distinct nets");
  }
  ensure_index();
  const auto it = pair_index_.find(pair_key(a, b));
  if (it == pair_index_.end()) {
    add_coupling(a, b, cap, 0.0);
    return;
  }
  CouplingCap& pair = pairs_[it->second];
  pair.cap = cap;
  for (NeighborCap& n : nets_[pair.net_a].couplings) {
    if (n.neighbor == pair.net_b) {
      n.cap = cap;
      break;
    }
  }
  for (NeighborCap& n : nets_[pair.net_b].couplings) {
    if (n.neighbor == pair.net_a) {
      n.cap = cap;
      break;
    }
  }
}

void Parasitics::remove_coupling(netlist::NetId a, netlist::NetId b) {
  ensure_index();
  const auto it = pair_index_.find(pair_key(a, b));
  if (it == pair_index_.end()) {
    throw std::invalid_argument("no coupling capacitor between the nets");
  }
  const CouplingCap pair = pairs_[it->second];
  pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(it->second));
  index_valid_ = false;  // erase shifted the indices
  auto drop_view = [](std::vector<NeighborCap>& views, netlist::NetId nb) {
    for (auto v = views.begin(); v != views.end(); ++v) {
      if (v->neighbor == nb) {
        views.erase(v);
        return;
      }
    }
  };
  drop_view(nets_[pair.net_a].couplings, pair.net_b);
  drop_view(nets_[pair.net_b].couplings, pair.net_a);
}

double Parasitics::total_wire_cap() const {
  double c = 0.0;
  for (const NetParasitics& n : nets_) c += n.wire_cap;
  return c;
}

double Parasitics::total_coupling_cap() const {
  double c = 0.0;
  for (const CouplingCap& p : pairs_) c += p.cap;
  return c;
}

}  // namespace xtalk::extract
