#include "extract/rc_tree.hpp"

#include <algorithm>
#include <cmath>

namespace xtalk::extract {

namespace {

/// Append a wire piece of `length` from `from` to a fresh node; the
/// piece's cap splits evenly onto its two end nodes.
std::size_t add_piece(RcTree& tree, std::size_t from, double length,
                      const device::Technology& tech) {
  const double res = length * tech.wire_r;
  const double cap = length * tech.wire_c_ground;
  RcTreeNode node;
  node.parent = static_cast<std::ptrdiff_t>(from);
  node.res_to_parent = res;
  node.cap = cap / 2.0;
  tree.nodes[from].cap += cap / 2.0;
  tree.nodes.push_back(node);
  return tree.nodes.size() - 1;
}

}  // namespace

RcTree build_rc_tree(const netlist::Netlist& nl,
                     const layout::Placement& placement,
                     const device::Technology& tech, netlist::NetId net_id) {
  RcTree tree;
  const netlist::Net& net = nl.net(net_id);
  if (net.sinks.empty()) return tree;

  const layout::GatePlace drv = placement.net_driver_position(nl, net_id);
  tree.nodes.push_back(RcTreeNode{});  // root at the driver

  // Sink geometry, keyed by original sink order.
  struct Tap {
    std::size_t sink_index;
    double x, y;
  };
  std::vector<Tap> taps;
  taps.reserve(net.sinks.size());
  for (std::size_t k = 0; k < net.sinks.size(); ++k) {
    const layout::GatePlace& s = placement.gate(net.sinks[k].gate);
    taps.push_back({k, s.x, s.y});
  }

  tree.sinks.resize(net.sinks.size());

  // Build each trunk side outward from the driver, sharing trunk nodes.
  auto build_side = [&](bool right) {
    std::vector<Tap> side;
    for (const Tap& t : taps) {
      if ((t.x >= drv.x) == right && (right || t.x < drv.x)) side.push_back(t);
    }
    std::sort(side.begin(), side.end(), [&](const Tap& a, const Tap& b) {
      return std::abs(a.x - drv.x) < std::abs(b.x - drv.x);
    });
    std::size_t trunk_node = 0;  // root
    double trunk_x = drv.x;
    for (const Tap& t : side) {
      const double run = std::abs(t.x - trunk_x);
      if (run > 0.0) {
        trunk_node = add_piece(tree, trunk_node, run, tech);
        trunk_x = t.x;
      }
      // Vertical drop to the sink (zero-length drop attaches at the tap).
      std::size_t attach = trunk_node;
      const double drop = std::abs(t.y - drv.y);
      if (drop > 0.0) attach = add_piece(tree, trunk_node, drop, tech);
      tree.sinks[t.sink_index] = {attach, net.sinks[t.sink_index]};
    }
  };
  build_side(/*right=*/true);
  build_side(/*right=*/false);
  return tree;
}

std::vector<double> elmore_delays(const RcTree& tree,
                                  const std::vector<double>& sink_pin_caps) {
  std::vector<double> out(tree.sinks.size(), 0.0);
  if (tree.nodes.empty()) return out;

  // Total cap per node, including attached sink pins.
  std::vector<double> cap(tree.nodes.size());
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) cap[i] = tree.nodes[i].cap;
  for (std::size_t k = 0; k < tree.sinks.size(); ++k) {
    cap[tree.sinks[k].node] +=
        k < sink_pin_caps.size() ? sink_pin_caps[k] : 0.0;
  }

  // Subtree capacitance: nodes are created parent-before-child, so a
  // reverse scan accumulates children into parents.
  std::vector<double> subtree = cap;
  for (std::size_t i = tree.nodes.size(); i-- > 1;) {
    subtree[static_cast<std::size_t>(tree.nodes[i].parent)] += subtree[i];
  }
  // Root-to-node delay: forward scan (parents precede children).
  std::vector<double> delay(tree.nodes.size(), 0.0);
  for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
    delay[i] = delay[static_cast<std::size_t>(tree.nodes[i].parent)] +
               tree.nodes[i].res_to_parent * subtree[i];
  }
  for (std::size_t k = 0; k < tree.sinks.size(); ++k) {
    out[k] = delay[tree.sinks[k].node];
  }
  return out;
}

}  // namespace xtalk::extract
