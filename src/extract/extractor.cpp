#include "extract/extractor.hpp"

#include "extract/rc_tree.hpp"

#include <algorithm>
#include <unordered_map>

namespace xtalk::extract {

namespace {

/// Key for accumulating couplings per unordered net pair.
std::uint64_t pair_key(netlist::NetId a, netlist::NetId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct TrackRef {
  std::uint32_t seg_index;
  double lo, hi;
  netlist::NetId net;
};

}  // namespace

Parasitics extract(const netlist::Netlist& nl,
                   const layout::RoutedDesign& routing,
                   const device::Technology& tech,
                   const ExtractionOptions& options) {
  Parasitics para(nl.num_nets());

  // --- per-net wire cap / length and per-sink RC -------------------------
  // Path resistance and wire Elmore come from the net's RC tree (shared
  // trunk with taps); the per-connection capacitance stays the L-route
  // value for SPEF / validation lumping.
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const layout::RoutedNet& rn = routing.net(n);
    NetParasitics& p = para.net(n);
    p.wire_length = rn.total_length;
    p.wire_cap = rn.total_length * tech.wire_c_ground;
    if (rn.sinks.empty()) continue;

    const RcTree tree =
        build_rc_tree(nl, routing.placement(), tech, n);
    const std::vector<double> wire_elmore =
        elmore_delays(tree, std::vector<double>(tree.sinks.size(), 0.0));
    // Path resistance per sink: walk to the root.
    p.sink_wires.reserve(rn.sinks.size());
    for (std::size_t k = 0; k < rn.sinks.size(); ++k) {
      SinkWire w;
      w.sink = rn.sinks[k].sink;
      w.capacitance = rn.sinks[k].wire_length * tech.wire_c_ground;
      double r = 0.0;
      for (std::ptrdiff_t node =
               static_cast<std::ptrdiff_t>(tree.sinks[k].node);
           node > 0; node = tree.nodes[static_cast<std::size_t>(node)].parent) {
        r += tree.nodes[static_cast<std::size_t>(node)].res_to_parent;
      }
      w.resistance = r;
      w.wire_elmore = wire_elmore[k];
      p.sink_wires.push_back(w);
    }
  }

  // --- coupling between adjacent tracks ----------------------------------
  // Group segments by (direction, channel, track).
  struct ChannelKey {
    bool horizontal;
    std::uint32_t channel;
    bool operator==(const ChannelKey&) const = default;
  };
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const {
      return (static_cast<std::size_t>(k.channel) << 1) |
             static_cast<std::size_t>(k.horizontal);
    }
  };
  std::unordered_map<ChannelKey, std::vector<std::vector<TrackRef>>,
                     ChannelKeyHash>
      channels;

  const auto& segs = routing.segments();
  for (std::uint32_t i = 0; i < segs.size(); ++i) {
    const layout::RouteSegment& s = segs[i];
    auto& tracks = channels[{s.horizontal, s.channel}];
    if (tracks.size() <= s.track) tracks.resize(s.track + 1);
    tracks[s.track].push_back({i, s.lo, s.hi, s.net});
  }

  std::unordered_map<std::uint64_t, CouplingCap> accumulated;

  for (auto& [key, tracks] : channels) {
    (void)key;
    for (auto& track : tracks) {
      std::sort(track.begin(), track.end(),
                [](const TrackRef& a, const TrackRef& b) { return a.lo < b.lo; });
    }
    const auto max_sep =
        static_cast<std::size_t>(tech.coupling_max_tracks);
    for (std::size_t t = 0; t + 1 < tracks.size(); ++t) {
      for (std::size_t sep = 1; sep <= max_sep && t + sep < tracks.size();
           ++sep) {
        const auto& a_track = tracks[t];
        const auto& b_track = tracks[t + sep];
        // Two-pointer sweep: within a track, intervals are disjoint (the
        // router's interval partitioning guarantees it), so both lo and hi
        // are sorted and the start pointer only moves forward.
        std::size_t start = 0;
        for (const TrackRef& a : a_track) {
          while (start < b_track.size() && b_track[start].hi <= a.lo) ++start;
          for (std::size_t j = start; j < b_track.size(); ++j) {
            const TrackRef& b = b_track[j];
            if (b.lo >= a.hi) break;
            const double overlap =
                std::min(a.hi, b.hi) - std::max(a.lo, b.lo);
            if (overlap <= 0.0 || a.net == b.net) continue;
            // Cap falls off linearly with track separation.
            const double cap = tech.wire_c_couple * overlap /
                               static_cast<double>(sep);
            CouplingCap& acc = accumulated[pair_key(a.net, b.net)];
            acc.net_a = std::min(a.net, b.net);
            acc.net_b = std::max(a.net, b.net);
            acc.cap += cap;
            acc.overlap_length += overlap;
          }
        }
      }
    }
  }

  for (const auto& [key, cc] : accumulated) {
    (void)key;
    if (cc.cap < options.min_coupling_cap) continue;
    para.add_coupling(cc.net_a, cc.net_b, cc.cap, cc.overlap_length);
  }
  return para;
}

}  // namespace xtalk::extract
