// Rule-based parasitic extraction over the routed design.
//
// Grounded capacitance and resistance are per-length rules; coupling
// capacitance is per unit of *parallel run length* between segments on
// adjacent tracks of the same channel (the dominant deep-submicron
// mechanism the paper targets). Couplings between the same net pair are
// accumulated into one lumped capacitor, matching the paper's lumped model.
#pragma once

#include "device/technology.hpp"
#include "extract/parasitics.hpp"
#include "layout/router.hpp"
#include "netlist/netlist.hpp"

namespace xtalk::extract {

struct ExtractionOptions {
  /// Couplings smaller than this are dropped (noise floor) [F].
  double min_coupling_cap = 0.1e-15;
};

/// Extract parasitics for every routed net.
Parasitics extract(const netlist::Netlist& netlist,
                   const layout::RoutedDesign& routing,
                   const device::Technology& tech,
                   const ExtractionOptions& options = {});

}  // namespace xtalk::extract
