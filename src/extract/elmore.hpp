// Elmore wire-delay model (paper §2: "Wire delays are modeled by the widely
// used Elmore model. This model is known to overestimate the delay for long
// wires. In the worst-case sense this is acceptable.").
//
// The coupling model lumps all capacitance at the driver output; each sink
// then sees an additional Elmore delay through its connection resistance.
#pragma once

#include "extract/parasitics.hpp"

namespace xtalk::extract {

/// Elmore delay of one driver->sink connection: the precomputed RC-tree
/// wire Elmore (rc_tree.hpp) plus path-resistance * pin load; falls back
/// to the lumped pi model R * (C_wire/2 + C_pin) when no tree value is
/// present.
double elmore_sink_delay(const SinkWire& wire, double sink_pin_cap);

/// Elmore delay of a uniformly distributed RC line of total resistance R
/// and capacitance C into a load C_load: R*C/2 + R*C_load. Reference for
/// tests.
double elmore_distributed_line(double r_total, double c_total, double c_load);

/// Largest Elmore sink delay on a net (the value reported as "wire delay"
/// of that net in the experiments).
double max_sink_elmore(const netlist::Netlist& netlist, const Parasitics& para,
                       netlist::NetId net);

}  // namespace xtalk::extract
