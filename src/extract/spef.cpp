#include "extract/spef.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace xtalk::extract {

namespace {

/// Pin name of a sink for the *CONN section: "<gate>:<PIN>".
std::string pin_name(const netlist::Netlist& nl, const netlist::PinRef& p) {
  const netlist::Gate& g = nl.gate(p.gate);
  return g.name + ":" + g.cell->pins()[p.pin].name;
}

/// Recoverable per-line failure; converted into a util::ParseDiag record
/// at the line boundary (the reader then resumes with the next line).
struct LineFail {
  std::string msg;
};

[[noreturn]] void fail(const std::string& msg) { throw LineFail{msg}; }

/// strtod-based number parse: std::stod throws std::invalid_argument /
/// std::out_of_range (not std::runtime_error) on adversarial input, and
/// accepts trailing garbage; this rejects both and keeps failures on the
/// recoverable LineFail path.
double parse_double(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    fail("malformed number '" + s + "'");
  }
  return v;
}

int parse_int(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE || v < INT_MIN ||
      v > INT_MAX) {
    fail("malformed index '" + s + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

std::string write_spef(const netlist::Netlist& nl, const Parasitics& para,
                       const SpefOptions& opt) {
  std::ostringstream os;
  os.precision(12);
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << opt.design_name << "\"\n";
  os << "*VENDOR \"xtalk-sta\"\n";
  os << "*PROGRAM \"xtalk-sta\"\n";
  os << "*VERSION \"1.0\"\n";
  os << "*DESIGN_FLOW \"EXTRACTED\"\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n";
  os << "*T_UNIT 1 NS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const NetParasitics& p = para.net(n);
    // Header total = wire cap (conserved exactly by the CAP section below)
    // plus the couplings.
    double total = p.wire_cap;
    for (const NeighborCap& nb : p.couplings) total += nb.cap;
    os << "*D_NET " << nl.net(n).name << " " << total / opt.cap_unit << "\n";

    os << "*CONN\n";
    const netlist::Net& net = nl.net(n);
    if (net.driver.gate != netlist::kNoGate) {
      os << "*I " << pin_name(nl, net.driver) << " O\n";
    } else {
      os << "*P " << net.name << " I\n";
    }
    for (const netlist::PinRef& s : net.sinks) {
      os << "*I " << pin_name(nl, s) << " I\n";
    }

    os << "*CAP\n";
    std::size_t index = 1;
    // Grounded cap: remainder at the driver node, per-connection cap at
    // each sink node. Per-connection caps of a multi-fanout star can sum
    // past the merged wire cap (shared trunk); scale them down so the
    // file conserves the net's total grounded capacitance exactly.
    double sink_caps = 0.0;
    for (const SinkWire& w : p.sink_wires) sink_caps += w.capacitance;
    const double scale =
        sink_caps > p.wire_cap && sink_caps > 0.0 ? p.wire_cap / sink_caps
                                                  : 1.0;
    const double driver_cap = std::max(0.0, p.wire_cap - sink_caps * scale);
    if (driver_cap > 0.0) {
      os << index++ << " " << net.name << ":0 " << driver_cap / opt.cap_unit
         << "\n";
    }
    for (std::size_t k = 0; k < p.sink_wires.size(); ++k) {
      const double c = p.sink_wires[k].capacitance * scale;
      if (c <= 0.0) continue;
      os << index++ << " " << net.name << ":" << k + 1 << " "
         << c / opt.cap_unit << "\n";
    }
    // Coupling capacitors, emitted once from the lower-id side.
    for (const NeighborCap& nb : p.couplings) {
      if (nb.neighbor < n) continue;
      os << index++ << " " << net.name << ":0 " << nl.net(nb.neighbor).name
         << ":0 " << nb.cap / opt.cap_unit << "\n";
    }

    if (!p.sink_wires.empty()) {
      os << "*RES\n";
      index = 1;
      for (std::size_t k = 0; k < p.sink_wires.size(); ++k) {
        os << index++ << " " << net.name << ":0 " << net.name << ":" << k + 1
           << " " << p.sink_wires[k].resistance / opt.res_unit << "\n";
      }
    }
    os << "*END\n\n";
  }
  return os.str();
}

Parasitics read_spef(std::string_view text, const netlist::Netlist& nl,
                     const util::ParseLimits& limits, util::DiagSink* sink) {
  util::ParseDiag pd("<spef>", limits, sink);
  Parasitics para(nl.num_nets());
  SpefOptions units;  // defaults; overwritten by *C_UNIT / *R_UNIT

  enum class Section { kNone, kConn, kCap, kRes };
  Section section = Section::kNone;
  netlist::NetId current = netlist::kNoNet;

  // Split "net:index" into net id and node index.
  auto parse_node = [&](const std::string& token)
      -> std::pair<netlist::NetId, int> {
    const std::size_t colon = token.rfind(':');
    if (colon == std::string::npos) {
      const netlist::NetId id = nl.find_net(token);
      if (id == netlist::kNoNet) fail("unknown net '" + token + "'");
      return {id, 0};
    }
    const std::string name = token.substr(0, colon);
    const netlist::NetId id = nl.find_net(name);
    if (id == netlist::kNoNet) fail("unknown net '" + name + "'");
    return {id, parse_int(token.substr(colon + 1))};
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::size_t tokens = 0;
  auto count_token = [&] {
    if (++tokens > limits.max_tokens) {
      pd.fatal(util::DiagCode::kInputLimit,
               static_cast<std::int64_t>(line_no), -1,
               "token count exceeds limit (" +
                   std::to_string(limits.max_tokens) + ")");
    }
  };
  bool recovering = true;
  while (recovering && pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t raw_len =
        (eol == std::string_view::npos ? text.size() : eol) - pos;
    ++line_no;
    if (raw_len > limits.max_line_length) {
      pd.fatal(util::DiagCode::kInputLimit,
               static_cast<std::int64_t>(line_no), -1,
               "line length " + std::to_string(raw_len) +
                   " exceeds limit (" +
                   std::to_string(limits.max_line_length) + ")");
    }
    std::string line(text.substr(pos, raw_len));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    // Trim + skip comments.
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::istringstream ss(line);
    std::string tok;
    if (!(ss >> tok)) continue;
    count_token();

    // Per-line recovery: every failure below abandons this line only and
    // the reader resumes with the next one (until max_errors trips).
    try {
      if (tok == "*C_UNIT") {
        double mult = 0.0;
        std::string unit;
        if (!(ss >> mult >> unit)) fail("malformed C_UNIT line");
        count_token();
        if (unit == "FF") units.cap_unit = mult * 1e-15;
        else if (unit == "PF") units.cap_unit = mult * 1e-12;
        else fail("unsupported C_UNIT " + unit);
        continue;
      }
      if (tok == "*R_UNIT") {
        double mult = 0.0;
        std::string unit;
        if (!(ss >> mult >> unit)) fail("malformed R_UNIT line");
        count_token();
        if (unit == "OHM") units.res_unit = mult;
        else if (unit == "KOHM") units.res_unit = mult * 1e3;
        else fail("unsupported R_UNIT " + unit);
        continue;
      }
      if (tok == "*D_NET") {
        std::string name;
        if (!(ss >> name)) fail("malformed D_NET line");
        count_token();
        current = nl.find_net(name);
        if (current == netlist::kNoNet) {
          fail("unknown net '" + name + "'");
        }
        para.net(current).sink_wires.clear();
        for (const netlist::PinRef& s : nl.net(current).sinks) {
          SinkWire w;
          w.sink = s;
          para.net(current).sink_wires.push_back(w);
        }
        section = Section::kNone;
        continue;
      }
      if (tok == "*CONN") { section = Section::kConn; continue; }
      if (tok == "*CAP") { section = Section::kCap; continue; }
      if (tok == "*RES") { section = Section::kRes; continue; }
      if (tok == "*END") {
        current = netlist::kNoNet;
        section = Section::kNone;
        continue;
      }
      if (tok[0] == '*') continue;  // header / CONN entries

      if (current == netlist::kNoNet) continue;
      if (section == Section::kCap) {
        // "<idx> node [node2] value"
        std::vector<std::string> fields;
        std::string f;
        while (ss >> f) {
          count_token();
          fields.push_back(f);
        }
        if (fields.size() == 2) {
          const auto [id, node] = parse_node(fields[0]);
          if (id != current) fail("grounded cap on foreign net");
          const double cap = parse_double(fields[1]) * units.cap_unit;
          para.net(current).wire_cap += cap;
          if (node > 0) {
            auto& wires = para.net(current).sink_wires;
            if (static_cast<std::size_t>(node) <= wires.size()) {
              wires[static_cast<std::size_t>(node) - 1].capacitance += cap;
            }
          }
        } else if (fields.size() == 3) {
          const auto [a, na] = parse_node(fields[0]);
          const auto [b, nb] = parse_node(fields[1]);
          (void)na;
          (void)nb;
          if (a == b) fail("coupling cap from a net to itself");
          const double cap = parse_double(fields[2]) * units.cap_unit;
          para.add_coupling(a, b, cap, 0.0);
        } else {
          fail("malformed CAP entry");
        }
        continue;
      }
      if (section == Section::kRes) {
        std::vector<std::string> fields;
        std::string f;
        while (ss >> f) {
          count_token();
          fields.push_back(f);
        }
        if (fields.size() != 3) fail("malformed RES entry");
        const auto [a, na] = parse_node(fields[0]);
        const auto [b, node] = parse_node(fields[1]);
        (void)na;
        if (a != current || b != current) {
          fail("resistance on foreign net");
        }
        const double res = parse_double(fields[2]) * units.res_unit;
        auto& wires = para.net(current).sink_wires;
        if (node <= 0 || static_cast<std::size_t>(node) > wires.size()) {
          fail("RES node index out of range");
        }
        wires[static_cast<std::size_t>(node) - 1].resistance = res;
        continue;
      }
    } catch (const LineFail& e) {
      recovering = pd.error(static_cast<std::int64_t>(line_no), -1, e.msg);
    } catch (const util::DiagError&) {
      throw;  // a fatal limit hit — not recoverable
    } catch (const std::exception& e) {
      recovering = pd.error(static_cast<std::int64_t>(line_no), -1, e.what());
    }
  }
  pd.finish();
  return para;
}

}  // namespace xtalk::extract
