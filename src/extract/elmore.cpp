#include "extract/elmore.hpp"

#include <algorithm>

namespace xtalk::extract {

double elmore_sink_delay(const SinkWire& wire, double sink_pin_cap) {
  const double wire_part = wire.wire_elmore >= 0.0
                               ? wire.wire_elmore
                               : wire.resistance * 0.5 * wire.capacitance;
  return wire_part + wire.resistance * sink_pin_cap;
}

double elmore_distributed_line(double r_total, double c_total, double c_load) {
  return r_total * (0.5 * c_total + c_load);
}

double max_sink_elmore(const netlist::Netlist& nl, const Parasitics& para,
                       netlist::NetId net) {
  double worst = 0.0;
  for (const SinkWire& w : para.net(net).sink_wires) {
    const double pin_cap =
        nl.gate(w.sink.gate).cell->pins()[w.sink.pin].cap;
    worst = std::max(worst, elmore_sink_delay(w, pin_cap));
  }
  return worst;
}

}  // namespace xtalk::extract
