#include "core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "delaycalc/stage.hpp"
#include "extract/elmore.hpp"
#include "sim/measure.hpp"
#include "sim/spice_export.hpp"

namespace xtalk::core {

namespace {

/// Sensitized static values for the side pins of a cell when `active_pin`
/// switches (same rule the delay calculator uses). -1 = the active pin.
/// For non-unate cells the side values depend on which stage path realizes
/// the transition, so the path is selected by inversion parity: odd when
/// the output moves opposite to the input.
std::vector<int> side_pin_values(const netlist::Cell& cell,
                                 std::size_t active_pin, bool odd_parity) {
  std::vector<int> values(cell.pins().size(), 0);
  values[active_pin] = -1;
  const auto paths = delaycalc::enumerate_paths(cell, active_pin);
  if (paths.empty()) return values;
  const delaycalc::StagePath* chosen = &paths.front();
  for (const delaycalc::StagePath& p : paths) {
    if ((p.inversions() % 2 == 1) == odd_parity) {
      chosen = &p;
      break;
    }
  }
  for (const auto& hop : chosen->hops) {
    const netlist::Stage& stage = cell.stages()[hop.stage];
    const auto states = delaycalc::sensitize(stage, hop.input);
    for (std::size_t i = 0; i < stage.inputs.size(); ++i) {
      const netlist::StageInput& in = stage.inputs[i];
      if (in.source != netlist::StageInput::Source::kCellPin) continue;
      if (in.index == active_pin) continue;
      if (states[i] == delaycalc::InputState::kSwitching) continue;
      values[in.index] = states[i] == delaycalc::InputState::kHigh ? 1 : 0;
    }
  }
  return values;
}

/// Full-swing ramp whose model-threshold crossing lands at `t_ref`.
util::Pwl stimulus_ramp(const device::Technology& tech, double t_ref,
                        double slew, bool rising) {
  const double rate = tech.vdd / slew;
  const double t_start = t_ref - tech.model_vth / rate;
  return rising ? util::Pwl::ramp(t_start, 0.0, t_start + slew, tech.vdd)
                : util::Pwl::ramp(t_start, tech.vdd, t_start + slew, 0.0);
}

struct Aggressor {
  std::size_t path_index;  ///< which path net it attacks
  double cap;
  double start;  ///< ramp start time (sim time)
};

struct BuiltCircuit {
  sim::Circuit circuit;
  std::vector<sim::NodeId> victim_node;  ///< per path step, 0 for source
  sim::NodeId measure_node = 0;
  std::size_t devices = 0;
};

}  // namespace

GateFixture build_gate_fixture(const device::Technology& tech,
                               const GateFixtureSpec& spec) {
  GateFixture fx;
  TransistorNetlistBuilder b(fx.circuit, tech);
  const netlist::Cell& cell = *spec.cell;

  fx.t_ref = spec.time_offset;
  fx.input = fx.circuit.add_node("in");
  fx.circuit.add_vsource(
      fx.input, stimulus_ramp(tech, fx.t_ref, spec.input_slew,
                              spec.input_rising));

  std::vector<std::optional<sim::NodeId>> pins(cell.pins().size());
  pins[spec.input_pin] = fx.input;
  auto inst = b.expand_cell(cell, "dut", pins);
  fx.output = inst.output;

  const std::vector<int> values =
      side_pin_values(cell, spec.input_pin, /*odd_parity=*/true);
  for (std::size_t p = 0; p < cell.pins().size(); ++p) {
    if (p == spec.input_pin || p == cell.output_pin()) continue;
    b.tie(inst.pin_nodes[p], values[p] == 1);
  }

  fx.circuit.add_capacitor(fx.output, fx.circuit.ground(), spec.load_cap);
  if (spec.coupling_cap > 0.0) {
    fx.aggressor = fx.circuit.add_node("aggressor");
    // The victim direction is the cell-output direction; the aggressor
    // switches opposite. For the simple (single-path, inverting) cells
    // used in fixtures the output direction is !input_rising.
    const bool victim_rising = !spec.input_rising;
    fx.circuit.add_vsource(
        fx.aggressor,
        victim_rising
            ? util::Pwl::ramp(spec.aggressor_start, tech.vdd,
                              spec.aggressor_start + spec.aggressor_slew, 0.0)
            : util::Pwl::ramp(spec.aggressor_start, 0.0,
                              spec.aggressor_start + spec.aggressor_slew,
                              tech.vdd));
    fx.circuit.add_capacitor(fx.output, fx.aggressor, spec.coupling_cap);
  }
  return fx;
}

namespace {

BuiltCircuit build_path_circuit(const Design& design,
                                const std::vector<sta::PathStep>& path,
                                const std::vector<Aggressor>& aggressors,
                                const ValidationOptions& opt) {
  const netlist::Netlist& nl = design.netlist();
  const extract::Parasitics& para = design.parasitics();
  const device::Technology& tech = design.tech();

  BuiltCircuit built;
  sim::Circuit& ckt = built.circuit;
  TransistorNetlistBuilder b(ckt, tech);
  built.victim_node.assign(path.size(), 0);

  // Source: the primary input driving the path.
  std::vector<sim::NodeId> driver_node(path.size());
  driver_node[0] = ckt.add_node(nl.net(path[0].net).name);
  ckt.add_vsource(driver_node[0],
                  stimulus_ramp(tech, opt.time_offset, opt.input_slew,
                                path[0].rising));

  // Which aggressor attacks which path net (by index).
  std::vector<std::vector<const Aggressor*>> per_step(path.size());
  for (const Aggressor& a : aggressors) per_step[a.path_index].push_back(&a);

  for (std::size_t i = 1; i < path.size(); ++i) {
    const netlist::GateId gid = path[i].driver;
    const netlist::Gate& gate = nl.gate(gid);
    const netlist::Cell& cell = *gate.cell;
    const netlist::NetId prev_net = path[i - 1].net;

    // The timed pin of this gate fed by the previous path net.
    std::uint32_t active_pin = 0;
    bool found = false;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (gate.pin_nets[p] == prev_net && netlist::is_timed_input(cell, p)) {
        active_pin = p;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("path step has no timed connection");

    // Wire RC of the previous net's connection to this gate (pi model).
    sim::NodeId sink_node = driver_node[i - 1];
    const extract::NetParasitics& pp = para.net(prev_net);
    double conn_cap = 0.0;
    for (const extract::SinkWire& w : pp.sink_wires) {
      if (w.sink == netlist::PinRef{gid, active_pin}) {
        conn_cap = w.capacitance;
        if (w.resistance > 0.0) {
          sink_node = ckt.add_node(nl.net(prev_net).name + "_snk");
          ckt.add_resistor(driver_node[i - 1], sink_node, w.resistance);
          ckt.add_capacitor(driver_node[i - 1], ckt.ground(),
                            w.capacitance / 2.0);
          ckt.add_capacitor(sink_node, ckt.ground(), w.capacitance / 2.0);
        }
        break;
      }
    }
    // Remaining load of the previous net: the rest of its wire cap plus the
    // input caps of the sinks we do not instantiate.
    const double active_sink_cap = cell.pins()[active_pin].cap;
    const double extra =
        std::max(0.0, pp.wire_cap - conn_cap) +
        std::max(0.0, nl.net_pin_cap(prev_net) - active_sink_cap);
    ckt.add_capacitor(driver_node[i - 1], ckt.ground(), extra);

    // Instantiate the gate at transistor level.
    std::vector<std::optional<sim::NodeId>> pins(cell.pins().size());
    pins[active_pin] = sink_node;
    auto inst = b.expand_cell(cell, "p" + std::to_string(i), pins);
    const bool odd_parity = path[i - 1].rising != path[i].rising;
    const std::vector<int> values =
        side_pin_values(cell, active_pin, odd_parity);
    for (std::size_t p = 0; p < cell.pins().size(); ++p) {
      if (p == active_pin || p == cell.output_pin()) continue;
      b.tie(inst.pin_nodes[p], values[p] == 1);
    }
    driver_node[i] = inst.output;
    built.victim_node[i] = inst.output;

    // Coupling capacitances on this net: active ones get an aggressor
    // source, the rest are grounded with unchanged value.
    double passive_cc = 0.0;
    for (const extract::NeighborCap& nb : para.net(path[i].net).couplings) {
      passive_cc += nb.cap;  // corrected below for active ones
    }
    for (const Aggressor* a : per_step[i]) {
      passive_cc -= a->cap;
      const sim::NodeId ag =
          ckt.add_node("ag" + std::to_string(i) + "_" +
                       std::to_string(per_step[i].size()));
      const bool victim_rising = path[i].rising;
      ckt.add_vsource(
          ag, victim_rising
                  ? util::Pwl::ramp(a->start, tech.vdd,
                                    a->start + opt.aggressor_slew, 0.0)
                  : util::Pwl::ramp(a->start, 0.0,
                                    a->start + opt.aggressor_slew, tech.vdd));
      ckt.add_capacitor(inst.output, ag, a->cap);
    }
    if (passive_cc > 0.0) {
      ckt.add_capacitor(inst.output, ckt.ground(), passive_cc);
    }
  }

  // Endpoint: model the worst (max-Elmore) sequential sink like the STA
  // endpoint arrival does; fall back to the driver node for primary
  // outputs.
  const netlist::NetId ep_net = path.back().net;
  built.measure_node = driver_node.back();
  const extract::NetParasitics& epp = para.net(ep_net);
  const extract::SinkWire* worst_sink = nullptr;
  double worst_elmore = 0.0;
  for (const extract::SinkWire& w : epp.sink_wires) {
    const netlist::Cell& c = *nl.gate(w.sink.gate).cell;
    if (!c.is_sequential() ||
        c.pins()[w.sink.pin].dir != netlist::PinDir::kInput) {
      continue;
    }
    const double el =
        extract::elmore_sink_delay(w, c.pins()[w.sink.pin].cap);
    if (el >= worst_elmore) {
      worst_elmore = el;
      worst_sink = &w;
    }
  }
  double ep_conn_cap = 0.0;
  if (worst_sink != nullptr && worst_sink->resistance > 0.0) {
    const sim::NodeId d = ckt.add_node("endpoint_d");
    ckt.add_resistor(driver_node.back(), d, worst_sink->resistance);
    ckt.add_capacitor(driver_node.back(), ckt.ground(),
                      worst_sink->capacitance / 2.0);
    ckt.add_capacitor(d, ckt.ground(), worst_sink->capacitance / 2.0);
    const netlist::Cell& c = *nl.gate(worst_sink->sink.gate).cell;
    ckt.add_capacitor(d, ckt.ground(), c.pins()[worst_sink->sink.pin].cap);
    built.measure_node = d;
    ep_conn_cap = worst_sink->capacitance;
  }
  // Remaining endpoint net load.
  const double ep_sink_cap =
      worst_sink != nullptr
          ? nl.gate(worst_sink->sink.gate)
                .cell->pins()[worst_sink->sink.pin]
                .cap
          : 0.0;
  const double ep_extra =
      std::max(0.0, epp.wire_cap - ep_conn_cap) +
      std::max(0.0, nl.net_pin_cap(ep_net) - ep_sink_cap);
  ckt.add_capacitor(driver_node.back(), ckt.ground(), ep_extra);

  built.devices = b.devices_added();
  return built;
}

}  // namespace

ValidationResult validate_critical_path(const Design& design,
                                        const sta::StaResult& result,
                                        const ValidationOptions& opt) {
  const std::vector<sta::PathStep> path = sta::extract_critical_path(result);
  if (path.size() < 2 || path.front().driver != netlist::kNoGate) {
    throw std::runtime_error("critical path does not start at a primary input");
  }
  const device::Technology& tech = design.tech();
  const extract::Parasitics& para = design.parasitics();

  // Select aggressors per path net.
  std::vector<Aggressor> aggressors;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const netlist::NetId net = path[i].net;
    const bool rising = path[i].rising;
    const sta::NetEvent& ev = result.timing[net].event(rising);
    for (const extract::NeighborCap& nb : para.net(net).couplings) {
      bool active = false;
      switch (opt.policy) {
        case AggressorPolicy::kNone:
          break;
        case AggressorPolicy::kAll:
          active = true;
          break;
        case AggressorPolicy::kFromTiming:
          active = result.timing[nb.neighbor].quiet_time(!rising) >
                   ev.start_time;
          break;
      }
      if (!active) continue;
      Aggressor a;
      a.path_index = i;
      a.cap = nb.cap;
      a.start = ev.start_time + opt.time_offset - opt.aggressor_slew / 2.0;
      aggressors.push_back(a);
    }
  }

  const double sta_delay = result.critical.arrival;
  sim::TransientOptions topt;
  topt.dt = opt.dt;
  topt.tstop = opt.time_offset + sta_delay * 1.5 + 3e-9;
  topt.record_every = 2;

  BuiltCircuit built;
  sim::TransientResult tr(0);
  for (int iter = 0; iter <= opt.align_iterations; ++iter) {
    built = build_path_circuit(design, path, aggressors, opt);
    tr = sim::simulate(built.circuit, design.tables(), topt);
    if (iter == opt.align_iterations || aggressors.empty()) break;
    // Re-aim every aggressor at the victim's measured threshold crossing.
    for (Aggressor& a : aggressors) {
      const util::Pwl w = tr.waveform(built.victim_node[a.path_index]);
      const bool rising = path[a.path_index].rising;
      const double vth = rising ? tech.model_vth : tech.vdd - tech.model_vth;
      const double t_cross = sim::last_crossing(w, vth, rising);
      if (std::isfinite(t_cross)) {
        a.start = t_cross - opt.aggressor_slew / 2.0;
      }
    }
  }

  ValidationResult vr;
  const bool ep_rising = path.back().rising;
  const double t_out = sim::last_crossing(tr.waveform(built.measure_node),
                                          tech.vdd / 2.0, ep_rising);
  vr.sim_delay = t_out - opt.time_offset;
  vr.sta_delay = sta_delay;
  vr.path_gates = path.size() - 1;
  vr.devices = built.devices;
  vr.aggressors = aggressors.size();
  vr.sim_nodes = built.circuit.num_nodes();
  vr.spice_deck = sim::export_spice(built.circuit, tech, topt,
                                    "xtalk-sta critical path validation");
  return vr;
}

}  // namespace xtalk::core
