#include "core/transistor_netlist.hpp"

#include <cassert>

namespace xtalk::core {

TransistorNetlistBuilder::TransistorNetlistBuilder(
    sim::Circuit& circuit, const device::Technology& tech)
    : circuit_(&circuit), tech_(&tech) {}

sim::NodeId TransistorNetlistBuilder::vdd() {
  if (vdd_ == 0) {
    vdd_ = circuit_->add_node("vdd");
    circuit_->add_vsource(vdd_, util::Pwl::constant(tech_->vdd));
  }
  return vdd_;
}

void TransistorNetlistBuilder::tie(sim::NodeId node, bool high) {
  circuit_->add_vsource(node, util::Pwl::constant(high ? tech_->vdd : 0.0));
}

void TransistorNetlistBuilder::add_device(device::MosType type, double width,
                                          sim::NodeId gate, sim::NodeId drain,
                                          sim::NodeId source) {
  circuit_->add_mosfet(type, width, gate, drain, source);
  circuit_->add_capacitor(gate, circuit_->ground(), tech_->gate_cap(width));
  circuit_->add_capacitor(drain, circuit_->ground(),
                          tech_->junction_cap(width));
  circuit_->add_capacitor(source, circuit_->ground(),
                          tech_->junction_cap(width));
  ++devices_added_;
}

void TransistorNetlistBuilder::expand_network(
    const netlist::SpNode& node, sim::NodeId top, sim::NodeId bottom,
    bool pullup, double width, const std::vector<sim::NodeId>& input_nodes,
    const std::string& prefix) {
  using Kind = netlist::SpNode::Kind;
  // In the dual (pull-up) walk, series and parallel swap roles.
  Kind kind = node.kind;
  if (pullup && kind == Kind::kSeries) kind = Kind::kParallel;
  else if (pullup && kind == Kind::kParallel) kind = Kind::kSeries;

  switch (kind) {
    case Kind::kDevice: {
      const device::MosType type =
          pullup ? device::MosType::kPmos : device::MosType::kNmos;
      add_device(type, width, input_nodes[node.input], top, bottom);
      return;
    }
    case Kind::kSeries: {
      sim::NodeId upper = top;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const bool last = i + 1 == node.children.size();
        const sim::NodeId lower =
            last ? bottom
                 : circuit_->add_node(prefix + "_m" +
                                      std::to_string(node_counter_++));
        expand_network(node.children[i], upper, lower, pullup, width,
                       input_nodes, prefix);
        upper = lower;
      }
      return;
    }
    case Kind::kParallel: {
      for (const netlist::SpNode& c : node.children) {
        expand_network(c, top, bottom, pullup, width, input_nodes, prefix);
      }
      return;
    }
  }
}

TransistorNetlistBuilder::Instance TransistorNetlistBuilder::expand_cell(
    const netlist::Cell& cell, const std::string& prefix,
    const std::vector<std::optional<sim::NodeId>>& pins) {
  assert(pins.size() == cell.pins().size());
  Instance inst;
  inst.pin_nodes.resize(pins.size());
  for (std::size_t p = 0; p < pins.size(); ++p) {
    inst.pin_nodes[p] =
        pins[p] ? *pins[p]
                : circuit_->add_node(prefix + "_" + cell.pins()[p].name);
  }
  inst.output = inst.pin_nodes[cell.output_pin()];

  // Stage output nodes: internal except the last (the output pin).
  const auto& stages = cell.stages();
  std::vector<sim::NodeId> stage_out(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    stage_out[s] = s + 1 == stages.size()
                       ? inst.output
                       : circuit_->add_node(prefix + "_s" + std::to_string(s));
  }

  for (std::size_t s = 0; s < stages.size(); ++s) {
    const netlist::Stage& stage = stages[s];
    std::vector<sim::NodeId> input_nodes(stage.inputs.size());
    for (std::size_t i = 0; i < stage.inputs.size(); ++i) {
      const netlist::StageInput& in = stage.inputs[i];
      input_nodes[i] = in.source == netlist::StageInput::Source::kCellPin
                           ? inst.pin_nodes[in.index]
                           : stage_out[in.index];
    }
    const std::string sp = prefix + "_s" + std::to_string(s);
    expand_network(stage.pulldown, stage_out[s], circuit_->ground(),
                   /*pullup=*/false, stage.wn, input_nodes, sp + "n");
    expand_network(stage.pulldown, vdd(), stage_out[s],
                   /*pullup=*/true, stage.wp, input_nodes, sp + "p");
  }
  return inst;
}

}  // namespace xtalk::core
