// Public facade: netlist -> clock tree -> placement -> routing ->
// extraction -> crosstalk-aware STA.
//
// A Design owns every intermediate product of the flow with stable
// addresses, so the analysis engine can borrow views safely.
//
// Quickstart:
//   auto design = xtalk::core::Design::from_bench(s27_text);
//   auto result = design.run(xtalk::sta::AnalysisMode::kIterative);
//   std::cout << result.longest_path_delay * 1e9 << " ns\n";
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "extract/extractor.hpp"
#include "layout/placement.hpp"
#include "layout/router.hpp"
#include "layout/track_optimizer.hpp"
#include "netlist/circuit_generator.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/netlist.hpp"
#include "sta/engine.hpp"
#include "sta/incremental/editor.hpp"
#include "sta/mcmm.hpp"

namespace xtalk::core {

struct FlowOptions {
  bool insert_clock_tree = true;
  netlist::ClockTreeOptions clock_tree;
  layout::PlacementOptions placement;
  layout::RouterOptions router;
  extract::ExtractionOptions extraction;
};

/// Aggregate physical/structural statistics for reports.
struct DesignStats {
  std::size_t cells = 0;
  std::size_t flip_flops = 0;
  std::size_t nets = 0;
  std::size_t transistors = 0;
  std::size_t coupling_pairs = 0;
  double total_wire_length = 0.0;    ///< [m]
  double total_wire_cap = 0.0;       ///< [F]
  double total_coupling_cap = 0.0;   ///< [F]
};

class Design {
 public:
  /// Run the physical flow on an existing netlist (consumed).
  static Design build(netlist::Netlist&& netlist, const FlowOptions& opt = {});
  /// Parse .bench text and run the flow.
  static Design from_bench(std::string_view bench_text,
                           const FlowOptions& opt = {});
  /// Generate a synthetic circuit and run the flow.
  static Design generate(const netlist::GeneratorSpec& spec,
                         const FlowOptions& opt = {});

  Design(Design&&) = default;
  Design& operator=(Design&&) = default;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  const netlist::Netlist& netlist() const { return *netlist_; }
  const netlist::LevelizedDag& dag() const { return *dag_; }
  const layout::Placement& placement() const { return *placement_; }
  const layout::RoutedDesign& routing() const { return *routing_; }
  const extract::Parasitics& parasitics() const { return *parasitics_; }
  const device::DeviceTableSet& tables() const { return *tables_; }
  const device::Technology& tech() const { return tables_->tech(); }

  sta::DesignView view() const;
  DesignStats stats() const;

  /// Run one analysis mode with default options.
  sta::StaResult run(sta::AnalysisMode mode) const;
  /// Run with full option control.
  sta::StaResult run(const sta::StaOptions& options) const;
  /// Multi-corner analysis: same layout and extraction, device tables of
  /// the given process corner.
  sta::StaResult run_at_corner(sta::AnalysisMode mode,
                               device::ProcessCorner corner) const;

  /// Multi-corner/multi-scenario analysis: run options.scenarios over this
  /// design with the cross-scenario sharing of sta::run_mcmm. Every
  /// scenario's result is bitwise a standalone run of that scenario.
  sta::McmmResult run_scenarios(const sta::StaOptions& options) const;

  /// Open an incremental (ECO) editing session. The editor copies the
  /// netlist/parasitics/DAG on first write; this design stays untouched
  /// and must outlive the editor. Pair with sta::incremental::IncrementalSta
  /// for cached re-timing after each edit batch.
  sta::incremental::DesignEditor make_editor() const;

  /// Crosstalk avoidance experiment: re-route the given nets onto isolated
  /// tracks (no neighbours) and re-extract the parasitics. Mutates the
  /// design; subsequent run() calls see the repaired layout.
  void isolate_nets(const std::vector<netlist::NetId>& nets,
                    const extract::ExtractionOptions& options = {});

  /// Crosstalk reduction experiment: permute channel tracks to minimize
  /// the weighted coupling cost (layout/track_optimizer.hpp) and
  /// re-extract. `net_weight` is per net id; missing entries weigh 1.0.
  layout::TrackOptimizerStats optimize_tracks(
      const std::vector<double>& net_weight,
      const extract::ExtractionOptions& options = {});

 private:
  Design() = default;

  std::unique_ptr<netlist::Netlist> netlist_;
  std::unique_ptr<netlist::LevelizedDag> dag_;
  std::unique_ptr<layout::Placement> placement_;
  std::unique_ptr<layout::RoutedDesign> routing_;
  std::unique_ptr<extract::Parasitics> parasitics_;
  const device::DeviceTableSet* tables_ = nullptr;
};

}  // namespace xtalk::core
