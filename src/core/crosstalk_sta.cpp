#include "core/crosstalk_sta.hpp"

#include "netlist/bench_parser.hpp"

namespace xtalk::core {

Design Design::build(netlist::Netlist&& nl, const FlowOptions& opt) {
  Design d;
  d.netlist_ = std::make_unique<netlist::Netlist>(std::move(nl));
  if (opt.insert_clock_tree) {
    netlist::build_clock_tree(*d.netlist_, opt.clock_tree);
  }
  d.dag_ = std::make_unique<netlist::LevelizedDag>(
      netlist::levelize(*d.netlist_));
  d.placement_ = std::make_unique<layout::Placement>(*d.netlist_, *d.dag_,
                                                     opt.placement);
  d.routing_ = std::make_unique<layout::RoutedDesign>(*d.netlist_,
                                                      *d.placement_,
                                                      opt.router);
  const device::Technology& tech = d.netlist_->library().tech();
  d.parasitics_ = std::make_unique<extract::Parasitics>(
      extract::extract(*d.netlist_, *d.routing_, tech, opt.extraction));
  // Device tables: the default set is shared; a non-default technology
  // would need its own set, which the library keeps alive statically.
  d.tables_ = &device::DeviceTableSet::half_micron();
  return d;
}

Design Design::from_bench(std::string_view bench_text, const FlowOptions& opt) {
  return build(netlist::parse_bench(bench_text,
                                    netlist::CellLibrary::half_micron()),
               opt);
}

Design Design::generate(const netlist::GeneratorSpec& spec,
                        const FlowOptions& opt) {
  return build(netlist::generate_circuit(spec,
                                         netlist::CellLibrary::half_micron()),
               opt);
}

sta::DesignView Design::view() const {
  sta::DesignView v;
  v.netlist = netlist_.get();
  v.dag = dag_.get();
  v.parasitics = parasitics_.get();
  v.tables = tables_;
  return v;
}

DesignStats Design::stats() const {
  DesignStats s;
  s.cells = netlist_->num_gates();
  s.flip_flops = netlist_->sequential_gates().size();
  s.nets = netlist_->num_nets();
  s.transistors = netlist_->transistor_count();
  s.coupling_pairs = parasitics_->coupling_pairs().size();
  s.total_wire_length = routing_->total_wire_length();
  s.total_wire_cap = parasitics_->total_wire_cap();
  s.total_coupling_cap = parasitics_->total_coupling_cap();
  return s;
}

sta::StaResult Design::run(sta::AnalysisMode mode) const {
  sta::StaOptions opt;
  opt.mode = mode;
  return run(opt);
}

sta::StaResult Design::run(const sta::StaOptions& options) const {
  return sta::run_sta(view(), options);
}

sta::StaResult Design::run_at_corner(sta::AnalysisMode mode,
                                     device::ProcessCorner corner) const {
  sta::DesignView v = view();
  v.tables = &device::DeviceTableSet::half_micron_corner(corner);
  sta::StaOptions opt;
  opt.mode = mode;
  return sta::run_sta(v, opt);
}

sta::McmmResult Design::run_scenarios(const sta::StaOptions& options) const {
  return sta::run_mcmm(view(), options);
}

sta::incremental::DesignEditor Design::make_editor() const {
  return sta::incremental::DesignEditor(view());
}

void Design::isolate_nets(const std::vector<netlist::NetId>& nets,
                          const extract::ExtractionOptions& options) {
  routing_->isolate_nets(nets);
  *parasitics_ = extract::extract(*netlist_, *routing_,
                                  netlist_->library().tech(), options);
}

layout::TrackOptimizerStats Design::optimize_tracks(
    const std::vector<double>& net_weight,
    const extract::ExtractionOptions& options) {
  const layout::TrackOptimizerStats stats =
      layout::optimize_tracks(*routing_, net_weight);
  *parasitics_ = extract::extract(*netlist_, *routing_,
                                  netlist_->library().tech(), options);
  return stats;
}

}  // namespace xtalk::core
