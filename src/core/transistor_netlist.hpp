// Expansion of library cells into full transistor-level simulation
// circuits. Used by the longest-path validation (paper §6) and by the
// delay-calculator accuracy experiments: the simulator sees every
// transistor of every stage, with explicit gate and junction
// capacitances — no equivalent-inverter collapsing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/cell_library.hpp"
#include "sim/circuit.hpp"

namespace xtalk::core {

class TransistorNetlistBuilder {
 public:
  TransistorNetlistBuilder(sim::Circuit& circuit,
                           const device::Technology& tech);

  sim::Circuit& circuit() { return *circuit_; }
  /// The VDD rail node (created with its source on first use).
  sim::NodeId vdd();

  /// Drive a node with a constant logic level.
  void tie(sim::NodeId node, bool high);

  struct Instance {
    std::vector<sim::NodeId> pin_nodes;  ///< parallel to cell.pins()
    sim::NodeId output;                  ///< convenience: the output pin node
  };

  /// Instantiate `cell` with the given pin connections. Unset pins get
  /// fresh nodes named <prefix>_<pin>. Internal stage nodes are created as
  /// needed; every device contributes its gate capacitance (gate node to
  /// ground) and junction capacitances (drain/source to ground).
  Instance expand_cell(const netlist::Cell& cell, const std::string& prefix,
                       const std::vector<std::optional<sim::NodeId>>& pins);

  std::size_t devices_added() const { return devices_added_; }

 private:
  /// Expand a series/parallel network between `top` and `bottom`.
  /// `pullup` walks the dual (series<->parallel swapped) with PMOS devices.
  void expand_network(const netlist::SpNode& node, sim::NodeId top,
                      sim::NodeId bottom, bool pullup, double width,
                      const std::vector<sim::NodeId>& input_nodes,
                      const std::string& prefix);

  void add_device(device::MosType type, double width, sim::NodeId gate,
                  sim::NodeId drain, sim::NodeId source);

  sim::Circuit* circuit_;
  const device::Technology* tech_;
  sim::NodeId vdd_ = 0;  ///< 0 = not created yet (ground is 0, never vdd)
  std::size_t devices_added_ = 0;
  std::size_t node_counter_ = 0;
};

}  // namespace xtalk::core
