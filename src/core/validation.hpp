// Longest-path validation against the transistor-level transient simulator
// (paper §6): the critical path reported by the STA is rebuilt as a full
// transistor netlist with its extracted lumped wire RC and coupling caps;
// active aggressors are piecewise-linear sources whose switching instants
// are iteratively adjusted to hit the victim around its threshold crossing
// ("for the [simulation] runs piecewise linear sources had to be
// iteratively adjusted to obtain worst-case path delays at every coupling
// capacitance"); the measured path delay is compared with the STA bound.
#pragma once

#include <string>
#include <vector>

#include "core/crosstalk_sta.hpp"
#include "core/transistor_netlist.hpp"
#include "sim/transient.hpp"
#include "sta/path.hpp"

namespace xtalk::core {

/// Which coupling caps on the path become switching aggressors.
enum class AggressorPolicy {
  kNone,        ///< all coupling caps passive grounded (best-case check)
  kAll,         ///< every coupling cap gets a worst-aligned aggressor
  kFromTiming,  ///< only neighbours the STA run says can switch opposite
                ///< during the victim transition (one-step rule)
};

struct ValidationOptions {
  AggressorPolicy policy = AggressorPolicy::kFromTiming;
  double aggressor_slew = 0.1e-9;  ///< aggressor ramp 0->VDD [s]
  double input_slew = 0.2e-9;      ///< must match the STA stimulus
  int align_iterations = 3;
  double time_offset = 0.5e-9;     ///< sim-time shift of the STA t=0
  double dt = 2e-12;               ///< transient step [s]
};

struct ValidationResult {
  double sim_delay = 0.0;  ///< measured launch-to-endpoint delay [s]
  double sta_delay = 0.0;  ///< the STA arrival for the same endpoint [s]
  std::size_t path_gates = 0;
  std::size_t devices = 0;
  std::size_t aggressors = 0;
  std::size_t sim_nodes = 0;
  std::string spice_deck;  ///< ngspice export of the final aligned circuit
};

/// Rebuild and simulate the critical path of `result`.
ValidationResult validate_critical_path(const Design& design,
                                        const sta::StaResult& result,
                                        const ValidationOptions& options = {});

/// Single-gate fixture for delay-calculator accuracy experiments: one cell
/// driven by a ramp on `input_pin` into a grounded load, optionally with an
/// active coupling cap to an aggressor source.
struct GateFixture {
  sim::Circuit circuit;
  sim::NodeId input = 0;
  sim::NodeId output = 0;
  sim::NodeId aggressor = 0;  ///< 0 if none
  double t_ref = 0.0;  ///< input model-threshold crossing time in sim time
};

struct GateFixtureSpec {
  const netlist::Cell* cell = nullptr;
  std::size_t input_pin = 0;
  bool input_rising = true;
  double input_slew = 0.2e-9;
  double load_cap = 20e-15;       ///< grounded load [F]
  double coupling_cap = 0.0;      ///< to the aggressor source [F]
  double aggressor_start = 0.0;   ///< aggressor ramp start (sim time) [s]
  double aggressor_slew = 0.1e-9;
  double time_offset = 0.5e-9;
};

GateFixture build_gate_fixture(const device::Technology& tech,
                               const GateFixtureSpec& spec);

}  // namespace xtalk::core
