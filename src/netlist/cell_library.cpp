#include "netlist/cell_library.hpp"

#include <cassert>
#include <stdexcept>

namespace xtalk::netlist {

namespace {

/// Number of devices directly adjacent to the network's output-side
/// terminal: a series chain exposes only its first device, a parallel
/// combination exposes every branch.
std::size_t adjacent_devices(const SpNode& node) {
  switch (node.kind) {
    case SpNode::Kind::kDevice:
      return 1;
    case SpNode::Kind::kSeries:
      return node.children.empty() ? 0 : adjacent_devices(node.children.front());
    case SpNode::Kind::kParallel: {
      std::size_t n = 0;
      for (const SpNode& c : node.children) n += adjacent_devices(c);
      return n;
    }
  }
  return 0;
}

/// Adjacency count for the dual network (pull-up side): series and parallel
/// swap roles.
std::size_t adjacent_devices_dual(const SpNode& node) {
  switch (node.kind) {
    case SpNode::Kind::kDevice:
      return 1;
    case SpNode::Kind::kSeries: {  // dual of series is parallel
      std::size_t n = 0;
      for (const SpNode& c : node.children) n += adjacent_devices_dual(c);
      return n;
    }
    case SpNode::Kind::kParallel:  // dual of parallel is series
      return node.children.empty() ? 0
                                   : adjacent_devices_dual(node.children.front());
  }
  return 0;
}

}  // namespace

std::size_t SpNode::device_count() const {
  if (kind == Kind::kDevice) return 1;
  std::size_t n = 0;
  for (const SpNode& c : children) n += c.device_count();
  return n;
}

std::size_t SpNode::stack_height() const {
  switch (kind) {
    case Kind::kDevice:
      return 1;
    case Kind::kSeries: {
      std::size_t n = 0;
      for (const SpNode& c : children) n += c.stack_height();
      return n;
    }
    case Kind::kParallel: {
      std::size_t n = 0;
      for (const SpNode& c : children)
        n = std::max(n, c.stack_height());
      return n;
    }
  }
  return 0;
}

Cell::Cell(std::string name, CellFunc func, std::vector<PinInfo> pins,
           std::vector<Stage> stages, bool sequential)
    : name_(std::move(name)),
      func_(func),
      pins_(std::move(pins)),
      stages_(std::move(stages)),
      sequential_(sequential) {
  [[maybe_unused]] bool have_output = false;
  bool have_clock = false;
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    switch (pins_[i].dir) {
      case PinDir::kInput:
        ++num_inputs_;
        break;
      case PinDir::kOutput:
        assert(!have_output && "cells have exactly one output");
        output_pin_ = i;
        have_output = true;
        break;
      case PinDir::kClock:
        clock_pin_ = i;
        have_clock = true;
        break;
    }
  }
  assert(have_output);
  assert(sequential_ == have_clock);
  (void)have_clock;
}

std::size_t Cell::pin_index(const std::string& pin_name) const {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (pins_[i].name == pin_name) return i;
  }
  throw std::out_of_range("cell " + name_ + " has no pin " + pin_name);
}

std::size_t Cell::transistor_count() const {
  std::size_t n = 0;
  for (const Stage& s : stages_) n += 2 * s.pulldown.device_count();
  return n;
}

Cell Cell::resized(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("cell " + name_ +
                                ": resize factor must be positive");
  }
  Cell c = *this;
  for (Stage& s : c.stages_) {
    s.wn *= factor;
    s.wp *= factor;
  }
  for (PinInfo& p : c.pins_) p.cap *= factor;
  c.output_cap_ *= factor;
  return c;
}

// ---------------------------------------------------------------------------
// Library construction
// ---------------------------------------------------------------------------

namespace {

constexpr double kUm = 1e-6;
// Base X1 device widths: PMOS roughly compensates the mobility ratio.
constexpr double kWn = 2.0 * kUm;
constexpr double kWp = 4.0 * kUm;

/// Builder for one cell: collects stages, then computes pin caps and the
/// output parasitic from the transistor topology.
class CellBuilder {
 public:
  CellBuilder(const device::Technology& tech, std::string name, CellFunc func)
      : tech_(tech), name_(std::move(name)), func_(func) {}

  CellBuilder& input(std::string pin_name) {
    pins_.push_back({std::move(pin_name), PinDir::kInput, 0.0});
    return *this;
  }
  CellBuilder& clock(std::string pin_name) {
    pins_.push_back({std::move(pin_name), PinDir::kClock, 0.0});
    sequential_ = true;
    return *this;
  }
  CellBuilder& output(std::string pin_name) {
    pins_.push_back({std::move(pin_name), PinDir::kOutput, 0.0});
    return *this;
  }

  CellBuilder& stage(std::vector<StageInput> inputs, SpNode pulldown,
                     double wn, double wp) {
    Stage s;
    s.inputs = std::move(inputs);
    s.pulldown = std::move(pulldown);
    s.wn = wn;
    s.wp = wp;
    stages_.push_back(std::move(s));
    return *this;
  }

  /// Convenience: single-input inverting stage.
  CellBuilder& inv_stage(StageInput in, double wn, double wp) {
    return stage({in}, SpNode::device(0), wn, wp);
  }

  Cell build() {
    // Pin capacitance: every stage-input device pair (one NMOS + one PMOS)
    // whose stage input references the pin contributes its gate caps.
    for (const Stage& s : stages_) {
      std::vector<std::size_t> multiplicity(s.inputs.size(), 0);
      count_leaves(s.pulldown, multiplicity);
      for (std::size_t ii = 0; ii < s.inputs.size(); ++ii) {
        const StageInput& si = s.inputs[ii];
        if (si.source != StageInput::Source::kCellPin) continue;
        const double cap = static_cast<double>(multiplicity[ii]) *
                           (tech_.gate_cap(s.wn) + tech_.gate_cap(s.wp));
        pins_[si.index].cap += cap;
      }
    }
    Cell cell(name_, func_, pins_, stages_, sequential_);
    // Output parasitic: drain junctions of the last stage adjacent to the
    // output node on both networks.
    const Stage& last = stages_.back();
    const double cout =
        static_cast<double>(adjacent_devices(last.pulldown)) *
            tech_.junction_cap(last.wn) +
        static_cast<double>(adjacent_devices_dual(last.pulldown)) *
            tech_.junction_cap(last.wp);
    // Cell is immutable; rebuild with the cap via the private setter pattern:
    // simplest is a friend-free approach: store in a mutable-by-construction
    // copy. We re-create the cell with the cap patched through a small
    // subclass-free trick: assign to the member via a setter method.
    cell.set_output_parasitic_cap(cout);
    return cell;
  }

 private:
  static void count_leaves(const SpNode& node,
                           std::vector<std::size_t>& multiplicity) {
    if (node.kind == SpNode::Kind::kDevice) {
      assert(node.input < multiplicity.size());
      ++multiplicity[node.input];
      return;
    }
    for (const SpNode& c : node.children) count_leaves(c, multiplicity);
  }

  const device::Technology& tech_;
  std::string name_;
  CellFunc func_;
  std::vector<PinInfo> pins_;
  std::vector<Stage> stages_;
  bool sequential_ = false;
};

}  // namespace

void CellLibrary::add(Cell cell) {
  auto name = cell.name();
  cells_.emplace(std::move(name), std::make_unique<Cell>(std::move(cell)));
}

void CellLibrary::build() {
  const device::Technology& t = *tech_;
  const std::vector<std::string> pin_names = {"A", "B", "C", "D"};

  // Inverters and buffers in three strengths.
  for (const auto& [suffix, mult] :
       std::vector<std::pair<std::string, double>>{
           {"X1", 1.0}, {"X2", 2.0}, {"X4", 4.0}}) {
    add(CellBuilder(t, "INV_" + suffix, CellFunc::kInv)
            .input("A")
            .output("Y")
            .inv_stage(StageInput::pin(0), kWn * mult, kWp * mult)
            .build());
    add(CellBuilder(t, "BUF_" + suffix, CellFunc::kBuf)
            .input("A")
            .output("Y")
            .inv_stage(StageInput::pin(0), kWn, kWp)
            .inv_stage(StageInput::stage(0), kWn * mult, kWp * mult)
            .build());
  }
  // Large clock buffers.
  for (const auto& [suffix, mult] :
       std::vector<std::pair<std::string, double>>{{"X8", 8.0}, {"X16", 16.0}}) {
    add(CellBuilder(t, "CLKBUF_" + suffix, CellFunc::kBuf)
            .input("A")
            .output("Y")
            .inv_stage(StageInput::pin(0), kWn * mult / 2.0, kWp * mult / 2.0)
            .inv_stage(StageInput::stage(0), kWn * mult, kWp * mult)
            .build());
  }

  // NAND2..4 (series NMOS upsized by the stack height) and NOR2..4 (dual).
  for (std::size_t n = 2; n <= 4; ++n) {
    const double wn_nand = kWn * static_cast<double>(n);
    const double wp_nor = kWp * static_cast<double>(n);
    for (const auto& [suffix, mult] :
         std::vector<std::pair<std::string, double>>{{"X1", 1.0}, {"X2", 2.0}}) {
      if (n > 2 && suffix == "X2") continue;  // only 2-input in X2
      std::vector<StageInput> ins;
      std::vector<SpNode> devs;
      CellBuilder nand(t, "NAND" + std::to_string(n) + "_" + suffix,
                       CellFunc::kNand);
      CellBuilder nor(t, "NOR" + std::to_string(n) + "_" + suffix,
                      CellFunc::kNor);
      for (std::size_t i = 0; i < n; ++i) {
        nand.input(pin_names[i]);
        nor.input(pin_names[i]);
        ins.push_back(StageInput::pin(i));
        devs.push_back(SpNode::device(i));
      }
      nand.output("Y").stage(ins, SpNode::series(devs), wn_nand * mult,
                             kWp * mult);
      nor.output("Y").stage(ins, SpNode::parallel(devs), kWn * mult,
                            wp_nor * mult);
      add(nand.build());
      add(nor.build());
    }
  }

  // AND / OR: NAND/NOR first stage plus an output inverter.
  for (std::size_t n = 2; n <= 3; ++n) {
    std::vector<StageInput> ins;
    std::vector<SpNode> devs;
    CellBuilder andc(t, "AND" + std::to_string(n) + "_X1", CellFunc::kAnd);
    CellBuilder orc(t, "OR" + std::to_string(n) + "_X1", CellFunc::kOr);
    for (std::size_t i = 0; i < n; ++i) {
      andc.input(pin_names[i]);
      orc.input(pin_names[i]);
      ins.push_back(StageInput::pin(i));
      devs.push_back(SpNode::device(i));
    }
    andc.output("Y")
        .stage(ins, SpNode::series(devs), kWn * static_cast<double>(n), kWp)
        .inv_stage(StageInput::stage(0), kWn, kWp);
    orc.output("Y")
        .stage(ins, SpNode::parallel(devs), kWn, kWp * static_cast<double>(n))
        .inv_stage(StageInput::stage(0), kWn, kWp);
    add(andc.build());
    add(orc.build());
  }

  // XOR2: Y = !(A*B + A'*B'); XNOR2: Y = !(A*B' + A'*B). Two input
  // inverters feed a 2-high AOI stage.
  {
    CellBuilder x(t, "XOR2_X1", CellFunc::kXor);
    x.input("A").input("B").output("Y");
    x.inv_stage(StageInput::pin(0), kWn, kWp);   // stage 0: A'
    x.inv_stage(StageInput::pin(1), kWn, kWp);   // stage 1: B'
    // stage inputs: 0=A, 1=B, 2=A', 3=B'
    x.stage({StageInput::pin(0), StageInput::pin(1), StageInput::stage(0),
             StageInput::stage(1)},
            SpNode::parallel({
                SpNode::series({SpNode::device(0), SpNode::device(1)}),
                SpNode::series({SpNode::device(2), SpNode::device(3)}),
            }),
            2.0 * kWn, 2.0 * kWp);
    add(x.build());

    CellBuilder xn(t, "XNOR2_X1", CellFunc::kXnor);
    xn.input("A").input("B").output("Y");
    xn.inv_stage(StageInput::pin(0), kWn, kWp);
    xn.inv_stage(StageInput::pin(1), kWn, kWp);
    xn.stage({StageInput::pin(0), StageInput::pin(1), StageInput::stage(0),
              StageInput::stage(1)},
             SpNode::parallel({
                 SpNode::series({SpNode::device(0), SpNode::device(3)}),
                 SpNode::series({SpNode::device(2), SpNode::device(1)}),
             }),
             2.0 * kWn, 2.0 * kWp);
    add(xn.build());
  }

  // AOI21: Y = !(A*B + C); OAI21: Y = !((A+B)*C).
  {
    CellBuilder aoi(t, "AOI21_X1", CellFunc::kAoi21);
    aoi.input("A").input("B").input("C").output("Y");
    aoi.stage({StageInput::pin(0), StageInput::pin(1), StageInput::pin(2)},
              SpNode::parallel({
                  SpNode::series({SpNode::device(0), SpNode::device(1)}),
                  SpNode::device(2),
              }),
              2.0 * kWn, 2.0 * kWp);
    add(aoi.build());

    CellBuilder oai(t, "OAI21_X1", CellFunc::kOai21);
    oai.input("A").input("B").input("C").output("Y");
    oai.stage({StageInput::pin(0), StageInput::pin(1), StageInput::pin(2)},
              SpNode::series({
                  SpNode::parallel({SpNode::device(0), SpNode::device(1)}),
                  SpNode::device(2),
              }),
              2.0 * kWn, 2.0 * kWp);
    add(oai.build());
  }

  // DFF: timing model is the CK -> Q arc through two inverting stages
  // (clock inverter + output driver), the customary lumped master/slave
  // simplification; D only contributes pin capacitance and terminates
  // combinational paths.
  {
    CellBuilder ff(t, "DFF_X1", CellFunc::kDff);
    ff.input("D").clock("CK").output("Q");
    ff.inv_stage(StageInput::pin(1), kWn, kWp);
    ff.inv_stage(StageInput::stage(0), 1.5 * kWn, 1.5 * kWp);
    Cell cell = ff.build();
    // The D pin drives an input transmission gate + inverter internally.
    cell.add_pin_cap(cell.pin_index("D"), t.gate_cap(kWn) + t.gate_cap(kWp));
    add(std::move(cell));
  }
}

CellLibrary::CellLibrary(const device::Technology& tech) : tech_(&tech) {
  build();
}

const Cell* CellLibrary::find(const std::string& name) const {
  auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : it->second.get();
}

const Cell& CellLibrary::get(const std::string& name) const {
  const Cell* c = find(name);
  if (!c) throw std::out_of_range("no cell named " + name);
  return *c;
}

const Cell& CellLibrary::by_func(CellFunc func, std::size_t fanin) const {
  switch (func) {
    case CellFunc::kInv:
      return get("INV_X1");
    case CellFunc::kBuf:
      return get("BUF_X1");
    case CellFunc::kNand:
      return get("NAND" + std::to_string(fanin) + "_X1");
    case CellFunc::kNor:
      return get("NOR" + std::to_string(fanin) + "_X1");
    case CellFunc::kAnd:
      return get("AND" + std::to_string(fanin) + "_X1");
    case CellFunc::kOr:
      return get("OR" + std::to_string(fanin) + "_X1");
    case CellFunc::kXor:
      return get("XOR2_X1");
    case CellFunc::kXnor:
      return get("XNOR2_X1");
    case CellFunc::kAoi21:
      return get("AOI21_X1");
    case CellFunc::kOai21:
      return get("OAI21_X1");
    case CellFunc::kDff:
      return get("DFF_X1");
  }
  throw std::out_of_range("unsupported cell function");
}

std::vector<const Cell*> CellLibrary::all_cells() const {
  std::vector<const Cell*> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) out.push_back(cell.get());
  return out;
}

const CellLibrary& CellLibrary::half_micron() {
  static const CellLibrary lib(device::Technology::half_micron());
  return lib;
}

}  // namespace xtalk::netlist
