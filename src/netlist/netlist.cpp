#include "netlist/netlist.hpp"

#include <stdexcept>

namespace xtalk::netlist {

NetId Netlist::add_net(const std::string& name, NetKind kind) {
  auto it = net_by_name_.find(name);
  if (it != net_by_name_.end()) return it->second;
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = name;
  n.kind = kind;
  nets_.push_back(std::move(n));
  net_by_name_.emplace(name, id);
  return id;
}

GateId Netlist::add_gate(const std::string& name, const Cell& cell,
                         std::vector<NetId> pin_nets) {
  if (pin_nets.size() != cell.pins().size()) {
    throw std::runtime_error("gate " + name + ": pin count mismatch for cell " +
                             cell.name());
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = name;
  g.cell = &cell;
  g.pin_nets = std::move(pin_nets);
  gates_.push_back(std::move(g));
  const Gate& stored = gates_.back();
  for (std::uint32_t p = 0; p < stored.pin_nets.size(); ++p) {
    const NetId nid = stored.pin_nets[p];
    if (nid == kNoNet) continue;
    if (cell.pins()[p].dir == PinDir::kOutput) {
      if (nets_[nid].driver.gate != kNoGate || nets_[nid].is_primary_input) {
        throw std::runtime_error("net " + nets_[nid].name +
                                 " has multiple drivers");
      }
      nets_[nid].driver = {id, p};
    } else {
      nets_[nid].sinks.push_back({id, p});
    }
  }
  return id;
}

void Netlist::mark_primary_input(NetId id) {
  Net& n = nets_[id];
  if (n.driver.gate != kNoGate) {
    throw std::runtime_error("primary input " + n.name + " already driven");
  }
  if (!n.is_primary_input) {
    n.is_primary_input = true;
    primary_inputs_.push_back(id);
  }
}

void Netlist::mark_primary_output(NetId id) { primary_outputs_.push_back(id); }

void Netlist::set_clock_net(NetId id) {
  clock_net_ = id;
  nets_[id].kind = NetKind::kClock;
}

void Netlist::reconnect_pin(GateId gid, std::uint32_t pin, NetId new_net) {
  Gate& g = gates_[gid];
  const NetId old_net = g.pin_nets[pin];
  const PinDir dir = g.cell->pins()[pin].dir;
  if (old_net != kNoNet) {
    Net& old_n = nets_[old_net];
    if (dir == PinDir::kOutput) {
      old_n.driver = {};
    } else {
      auto& sinks = old_n.sinks;
      std::erase(sinks, PinRef{gid, pin});
    }
  }
  g.pin_nets[pin] = new_net;
  Net& n = nets_[new_net];
  if (dir == PinDir::kOutput) {
    if (n.driver.gate != kNoGate || n.is_primary_input) {
      throw std::runtime_error("net " + n.name + " has multiple drivers");
    }
    n.driver = {gid, pin};
  } else {
    n.sinks.push_back({gid, pin});
  }
}

void Netlist::replace_gate_cell(GateId gid, const Cell& cell) {
  Gate& g = gates_[gid];
  const Cell& old = *g.cell;
  if (cell.pins().size() != old.pins().size()) {
    throw std::runtime_error("gate " + g.name + ": replacement cell " +
                             cell.name() + " has a different pin count");
  }
  for (std::size_t p = 0; p < cell.pins().size(); ++p) {
    if (cell.pins()[p].dir != old.pins()[p].dir) {
      throw std::runtime_error("gate " + g.name + ": replacement cell " +
                               cell.name() + " pin " + cell.pins()[p].name +
                               " changes direction");
    }
  }
  if (cell.is_sequential() != old.is_sequential()) {
    throw std::runtime_error("gate " + g.name + ": replacement cell " +
                             cell.name() + " changes the sequential flag");
  }
  g.cell = &cell;
}

NetId Netlist::find_net(const std::string& name) const {
  auto it = net_by_name_.find(name);
  return it == net_by_name_.end() ? kNoNet : it->second;
}

std::vector<GateId> Netlist::sequential_gates() const {
  std::vector<GateId> out;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].cell->is_sequential()) out.push_back(g);
  }
  return out;
}

double Netlist::net_pin_cap(NetId id) const {
  double cap = 0.0;
  for (const PinRef& s : nets_[id].sinks) {
    cap += gates_[s.gate].cell->pins()[s.pin].cap;
  }
  return cap;
}

std::size_t Netlist::transistor_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) n += g.cell->transistor_count();
  return n;
}

void Netlist::validate() const {
  for (NetId i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (!n.is_primary_input && n.driver.gate == kNoGate) {
      throw std::runtime_error("net " + n.name + " has no driver");
    }
    for (const PinRef& s : n.sinks) {
      if (s.gate >= gates_.size()) {
        throw std::runtime_error("net " + n.name + " sink gate out of range");
      }
      const Gate& g = gates_[s.gate];
      if (g.pin_nets[s.pin] != i) {
        throw std::runtime_error("net " + n.name + " sink back-pointer broken");
      }
    }
  }
  for (GateId gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    for (std::uint32_t p = 0; p < g.pin_nets.size(); ++p) {
      if (g.pin_nets[p] == kNoNet) {
        throw std::runtime_error("gate " + g.name + " pin " +
                                 g.cell->pins()[p].name + " unconnected");
      }
    }
  }
}

}  // namespace xtalk::netlist
