#include "netlist/verilog_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace xtalk::netlist {

namespace {

struct Token {
  std::string text;
  std::size_t line;
  std::size_t column;
};

/// Recoverable syntax error, thrown inside one statement and converted
/// into a util::ParseDiag record at the statement boundary (the parser
/// then resynchronizes at the next ';').
struct SyntaxError {
  std::size_t line;
  std::size_t column;
  std::string msg;
};

[[noreturn]] void fail(std::size_t line, std::size_t column,
                       const std::string& msg) {
  throw SyntaxError{line, column, msg};
}

/// Tokenizer: identifiers, and single-character punctuation ( ) , ; .
/// Unexpected characters are recorded and skipped (one diagnostic each);
/// token-count and identifier-length limits abort via DiagError.
std::vector<Token> tokenize(std::string_view text, util::ParseDiag& pd,
                            bool& recovering) {
  const util::ParseLimits& limits = pd.limits();
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t line_start = 0;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto column = [&](std::size_t at) { return at - line_start + 1; };
  auto push = [&](std::string tok, std::size_t at) {
    if (tok.size() > limits.max_line_length) {
      pd.fatal(util::DiagCode::kInputLimit, static_cast<std::int64_t>(line),
               static_cast<std::int64_t>(column(at)),
               "identifier length " + std::to_string(tok.size()) +
                   " exceeds limit (" +
                   std::to_string(limits.max_line_length) + ")");
    }
    if (out.size() >= limits.max_tokens) {
      pd.fatal(util::DiagCode::kInputLimit, static_cast<std::int64_t>(line),
               static_cast<std::int64_t>(column(at)),
               "token count exceeds limit (" +
                   std::to_string(limits.max_tokens) + ")");
    }
    out.push_back({std::move(tok), line, column(at)});
  };
  while (i < n && recovering) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      if (i + 1 >= n) {
        recovering = pd.error(static_cast<std::int64_t>(line),
                              static_cast<std::int64_t>(column(i)),
                              "unterminated block comment");
        break;
      }
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      std::size_t j = i;
      if (c == '\\') {  // escaped identifier, ends at whitespace
        ++j;
        while (j < n && !std::isspace(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        push(std::string(text.substr(i + 1, j - i - 1)), i);
      } else {
        while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                         text[j] == '_' || text[j] == '$')) {
          ++j;
        }
        push(std::string(text.substr(i, j - i)), i);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      push(std::string(text.substr(i, j - i)), i);
      i = j;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.') {
      push(std::string(1, c), i);
      ++i;
      continue;
    }
    recovering = pd.error(static_cast<std::int64_t>(line),
                          static_cast<std::int64_t>(column(i)),
                          std::string("unexpected character '") + c + "'");
    ++i;  // skip the bad byte and keep tokenizing
  }
  return out;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const CellLibrary& library,
         util::ParseDiag& pd, bool recovering)
      : tokens_(std::move(tokens)),
        nl_(library),
        pd_(&pd),
        recovering_(recovering) {}

  Netlist run() {
    statement([&] {
      expect("module");
      next();  // module name
      if (peek() == "(") {
        // Port list: names only (re-declared as input/output below).
        next();
        while (pos_ < tokens_.size() && peek() != ")") next();
        expect(")");
      }
      expect(";");
    });

    bool saw_endmodule = false;
    while (recovering_ && pos_ < tokens_.size()) {
      if (peek() == "endmodule") {
        saw_endmodule = true;
        break;
      }
      statement([&] {
        const std::string kw = peek();
        if (kw == "input" || kw == "output" || kw == "wire") {
          next();
          declaration(kw);
        } else {
          instance();
        }
      });
    }
    if (recovering_ && !saw_endmodule) {
      recovering_ = pd_->error(static_cast<std::int64_t>(last_line()), -1,
                               "missing endmodule");
    }
    pd_->finish();
    try {
      finalize_clock();
      nl_.validate();
    } catch (const util::DiagError&) {
      throw;
    } catch (const std::exception& e) {
      // Structural inconsistency after a clean parse — still a DiagError.
      pd_->fatal(util::DiagCode::kParseError, -1, -1, e.what());
    }
    return std::move(nl_);
  }

 private:
  /// Run one statement body with per-statement error isolation: a syntax
  /// error or a netlist-core throw becomes a recorded diagnostic and the
  /// parser resynchronizes at the token after the next ';'.
  template <typename Fn>
  void statement(Fn&& body) {
    if (!recovering_) return;
    try {
      body();
    } catch (const SyntaxError& e) {
      recovering_ = pd_->error(static_cast<std::int64_t>(e.line),
                               e.column == 0
                                   ? -1
                                   : static_cast<std::int64_t>(e.column),
                               e.msg);
      sync();
    } catch (const util::DiagError&) {
      throw;  // a fatal limit hit — not recoverable
    } catch (const std::exception& e) {
      recovering_ =
          pd_->error(static_cast<std::int64_t>(line()), -1, e.what());
      sync();
    }
  }

  /// Skip past the next ';' (statement boundary).
  void sync() {
    while (pos_ < tokens_.size() && tokens_[pos_].text != ";") ++pos_;
    if (pos_ < tokens_.size()) ++pos_;
  }

  const std::string& peek() const {
    static const std::string empty;
    return pos_ < tokens_.size() ? tokens_[pos_].text : empty;
  }
  std::size_t last_line() const {
    return tokens_.empty() ? 0 : tokens_.back().line;
  }
  std::size_t line() const {
    return pos_ < tokens_.size() ? tokens_[pos_].line : last_line();
  }
  std::size_t column() const {
    return pos_ < tokens_.size() ? tokens_[pos_].column : 0;
  }
  std::string next() {
    if (pos_ >= tokens_.size()) {
      fail(last_line(), 0, "unexpected end of input");
    }
    return tokens_[pos_++].text;
  }
  void expect(const std::string& want) {
    const std::size_t at = line();
    const std::size_t col = column();
    const std::string got = next();
    if (got != want) {
      fail(at, col, "expected '" + want + "', got '" + got + "'");
    }
  }

  NetId add_net_limited(const std::string& name, std::size_t at) {
    const NetId id = nl_.add_net(name);
    if (nl_.num_nets() > pd_->limits().max_nets) {
      pd_->fatal(util::DiagCode::kInputLimit, static_cast<std::int64_t>(at),
                 -1,
                 "net count exceeds limit (" +
                     std::to_string(pd_->limits().max_nets) + ")");
    }
    return id;
  }

  void declaration(const std::string& kind) {
    for (;;) {
      const std::size_t at = line();
      const std::size_t col = column();
      const std::string name = next();
      const NetId id = add_net_limited(name, at);
      if (kind == "input") {
        nl_.mark_primary_input(id);
      } else if (kind == "output") {
        outputs_.push_back(id);
      }
      const std::string sep = next();
      if (sep == ";") break;
      if (sep != ",") fail(at, col, "expected ',' or ';' in declaration");
    }
  }

  void instance() {
    const std::size_t at = line();
    const std::size_t at_col = column();
    const std::string cell_name = next();
    const Cell* cell = nl_.library().find(cell_name);
    if (cell == nullptr) {
      fail(at, at_col, "unknown cell '" + cell_name + "'");
    }
    if (nl_.num_gates() >= pd_->limits().max_instances) {
      pd_->fatal(util::DiagCode::kInputLimit, static_cast<std::int64_t>(at),
                 -1,
                 "instance count exceeds limit (" +
                     std::to_string(pd_->limits().max_instances) + ")");
    }
    const std::string inst_name = next();
    expect("(");
    std::vector<NetId> pins(cell->pins().size(), kNoNet);
    for (;;) {
      expect(".");
      const std::size_t pin_at = line();
      const std::size_t pin_col = column();
      const std::string pin_name = next();
      std::size_t pin_index = 0;
      try {
        pin_index = cell->pin_index(pin_name);
      } catch (const std::out_of_range&) {
        fail(pin_at, pin_col,
             "cell " + cell_name + " has no pin '" + pin_name + "'");
      }
      expect("(");
      const std::string net_name = next();
      expect(")");
      pins[pin_index] = add_net_limited(net_name, pin_at);
      const std::string sep = next();
      if (sep == ")") break;
      if (sep != ",") {
        fail(pin_at, pin_col, "expected ',' or ')' in connection list");
      }
    }
    expect(";");
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p] == kNoNet) {
        fail(at, at_col, "instance " + inst_name + " leaves pin " +
                             cell->pins()[p].name + " unconnected");
      }
    }
    nl_.add_gate(inst_name, *cell, std::move(pins));
  }

  /// The net feeding DFF CK pins becomes the clock.
  void finalize_clock() {
    for (const NetId out : outputs_) nl_.mark_primary_output(out);
    for (GateId g = 0; g < nl_.num_gates(); ++g) {
      const Gate& gate = nl_.gate(g);
      if (!gate.cell->is_sequential()) continue;
      const NetId ck = gate.pin_nets[gate.cell->clock_pin()];
      if (nl_.clock_net() == kNoNet) {
        nl_.set_clock_net(ck);
      } else if (nl_.clock_net() != ck) {
        nl_.net(ck).kind = NetKind::kClock;
      }
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Netlist nl_;
  std::vector<NetId> outputs_;
  util::ParseDiag* pd_;
  bool recovering_;
};

}  // namespace

Netlist parse_verilog(std::string_view text, const CellLibrary& library,
                      const util::ParseLimits& limits, util::DiagSink* sink) {
  util::ParseDiag pd("<verilog>", limits, sink);
  bool recovering = true;
  std::vector<Token> tokens = tokenize(text, pd, recovering);
  return Parser(std::move(tokens), library, pd, recovering).run();
}

std::string write_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream os;
  os << "module " << module_name << " (";
  bool first = true;
  for (const NetId id : nl.primary_inputs()) {
    os << (first ? "" : ", ") << nl.net(id).name;
    first = false;
  }
  for (const NetId id : nl.primary_outputs()) {
    os << (first ? "" : ", ") << nl.net(id).name;
    first = false;
  }
  os << ");\n";
  for (const NetId id : nl.primary_inputs()) {
    os << "  input " << nl.net(id).name << ";\n";
  }
  for (const NetId id : nl.primary_outputs()) {
    os << "  output " << nl.net(id).name << ";\n";
  }
  // Internal wires: everything that is neither an input nor an output.
  std::vector<char> is_port(nl.num_nets(), 0);
  for (const NetId id : nl.primary_inputs()) is_port[id] = 1;
  for (const NetId id : nl.primary_outputs()) is_port[id] = 1;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (!is_port[n]) os << "  wire " << nl.net(n).name << ";\n";
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    os << "  " << gate.cell->name() << " " << gate.name << " (";
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      os << (p ? ", " : "") << "." << gate.cell->pins()[p].name << "("
         << nl.net(gate.pin_nets[p]).name << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace xtalk::netlist
