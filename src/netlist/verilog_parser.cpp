#include "netlist/verilog_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace xtalk::netlist {

namespace {

struct Token {
  std::string text;
  std::size_t line;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("verilog parse error, line " +
                           std::to_string(line) + ": " + msg);
}

/// Tokenizer: identifiers, and single-character punctuation ( ) , ; .
std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) fail(line, "unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      std::size_t j = i;
      if (c == '\\') {  // escaped identifier, ends at whitespace
        ++j;
        while (j < n && !std::isspace(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        out.push_back({std::string(text.substr(i + 1, j - i - 1)), line});
      } else {
        while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                         text[j] == '_' || text[j] == '$')) {
          ++j;
        }
        out.push_back({std::string(text.substr(i, j - i)), line});
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      out.push_back({std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '.') {
      out.push_back({std::string(1, c), line});
      ++i;
      continue;
    }
    fail(line, std::string("unexpected character '") + c + "'");
  }
  return out;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const CellLibrary& library)
      : tokens_(std::move(tokens)), nl_(library) {}

  Netlist run() {
    expect("module");
    next();  // module name
    if (peek() == "(") {
      // Port list: names only (re-declared as input/output below).
      next();
      while (peek() != ")") next();
      next();
    }
    expect(";");

    while (peek() != "endmodule") {
      if (pos_ >= tokens_.size()) fail(last_line(), "missing endmodule");
      const std::string kw = peek();
      if (kw == "input" || kw == "output" || kw == "wire") {
        next();
        declaration(kw);
      } else {
        instance();
      }
    }
    finalize_clock();
    nl_.validate();
    return std::move(nl_);
  }

 private:
  const std::string& peek() const {
    static const std::string empty;
    return pos_ < tokens_.size() ? tokens_[pos_].text : empty;
  }
  std::size_t last_line() const {
    return tokens_.empty() ? 0 : tokens_.back().line;
  }
  std::size_t line() const {
    return pos_ < tokens_.size() ? tokens_[pos_].line : last_line();
  }
  std::string next() {
    if (pos_ >= tokens_.size()) fail(last_line(), "unexpected end of input");
    return tokens_[pos_++].text;
  }
  void expect(const std::string& want) {
    const std::size_t at = line();
    const std::string got = next();
    if (got != want) fail(at, "expected '" + want + "', got '" + got + "'");
  }

  void declaration(const std::string& kind) {
    for (;;) {
      const std::size_t at = line();
      const std::string name = next();
      const NetId id = nl_.add_net(name);
      if (kind == "input") {
        nl_.mark_primary_input(id);
      } else if (kind == "output") {
        outputs_.push_back(id);
      }
      const std::string sep = next();
      if (sep == ";") break;
      if (sep != ",") fail(at, "expected ',' or ';' in declaration");
    }
  }

  void instance() {
    const std::size_t at = line();
    const std::string cell_name = next();
    const Cell* cell = nl_.library().find(cell_name);
    if (cell == nullptr) fail(at, "unknown cell '" + cell_name + "'");
    const std::string inst_name = next();
    expect("(");
    std::vector<NetId> pins(cell->pins().size(), kNoNet);
    for (;;) {
      expect(".");
      const std::size_t pin_at = line();
      const std::string pin_name = next();
      std::size_t pin_index = 0;
      try {
        pin_index = cell->pin_index(pin_name);
      } catch (const std::out_of_range&) {
        fail(pin_at, "cell " + cell_name + " has no pin '" + pin_name + "'");
      }
      expect("(");
      const std::string net_name = next();
      expect(")");
      pins[pin_index] = nl_.add_net(net_name);
      const std::string sep = next();
      if (sep == ")") break;
      if (sep != ",") fail(pin_at, "expected ',' or ')' in connection list");
    }
    expect(";");
    for (std::size_t p = 0; p < pins.size(); ++p) {
      if (pins[p] == kNoNet) {
        fail(at, "instance " + inst_name + " leaves pin " +
                     cell->pins()[p].name + " unconnected");
      }
    }
    nl_.add_gate(inst_name, *cell, std::move(pins));
  }

  /// The net feeding DFF CK pins becomes the clock.
  void finalize_clock() {
    for (const NetId out : outputs_) nl_.mark_primary_output(out);
    for (GateId g = 0; g < nl_.num_gates(); ++g) {
      const Gate& gate = nl_.gate(g);
      if (!gate.cell->is_sequential()) continue;
      const NetId ck = gate.pin_nets[gate.cell->clock_pin()];
      if (nl_.clock_net() == kNoNet) {
        nl_.set_clock_net(ck);
      } else if (nl_.clock_net() != ck) {
        nl_.net(ck).kind = NetKind::kClock;
      }
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Netlist nl_;
  std::vector<NetId> outputs_;
};

}  // namespace

Netlist parse_verilog(std::string_view text, const CellLibrary& library) {
  return Parser(tokenize(text), library).run();
}

std::string write_verilog(const Netlist& nl, const std::string& module_name) {
  std::ostringstream os;
  os << "module " << module_name << " (";
  bool first = true;
  for (const NetId id : nl.primary_inputs()) {
    os << (first ? "" : ", ") << nl.net(id).name;
    first = false;
  }
  for (const NetId id : nl.primary_outputs()) {
    os << (first ? "" : ", ") << nl.net(id).name;
    first = false;
  }
  os << ");\n";
  for (const NetId id : nl.primary_inputs()) {
    os << "  input " << nl.net(id).name << ";\n";
  }
  for (const NetId id : nl.primary_outputs()) {
    os << "  output " << nl.net(id).name << ";\n";
  }
  // Internal wires: everything that is neither an input nor an output.
  std::vector<char> is_port(nl.num_nets(), 0);
  for (const NetId id : nl.primary_inputs()) is_port[id] = 1;
  for (const NetId id : nl.primary_outputs()) is_port[id] = 1;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (!is_port[n]) os << "  wire " << nl.net(n).name << ";\n";
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    os << "  " << gate.cell->name() << " " << gate.name << " (";
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      os << (p ? ", " : "") << "." << gate.cell->pins()[p].name << "("
         << nl.net(gate.pin_nets[p]).name << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace xtalk::netlist
