// Small public benchmark circuits embedded as .bench text, used by tests
// and examples. The big ISCAS89 circuits of the paper's tables are not
// redistributable; those are matched by the synthetic generator
// (circuit_generator.hpp) instead — see DESIGN.md §3.
#pragma once

#include <string_view>

namespace xtalk::netlist {

/// ISCAS89 s27: 4 inputs, 1 output, 3 flip-flops, 10 gates.
std::string_view s27_bench();

/// ISCAS85 c17: 5 inputs, 2 outputs, 6 NAND gates (combinational).
std::string_view c17_bench();

/// A tiny hand-made sequential circuit with an obvious critical path and a
/// long parallel bus, built to exhibit strong coupling; used by examples.
std::string_view coupled_bus_bench();

}  // namespace xtalk::netlist
