#include "netlist/clock_tree.hpp"

#include <algorithm>

namespace xtalk::netlist {

ClockTreeStats build_clock_tree(Netlist& nl, const ClockTreeOptions& opt) {
  ClockTreeStats stats;
  const NetId clk = nl.clock_net();
  if (clk == kNoNet) return stats;

  // Current clock sinks (flip-flop CK pins). Copy: we mutate the net.
  std::vector<PinRef> sinks = nl.net(clk).sinks;
  if (sinks.empty()) return stats;

  const Cell& leaf_cell = nl.library().get(opt.leaf_cell);
  const Cell& trunk_cell = nl.library().get(opt.trunk_cell);

  std::size_t counter = 0;
  // Bottom-up: group sinks under leaf buffers, then buffer groups under
  // trunk buffers, until one driver group remains that the clock root can
  // drive directly.
  bool leaf_level = true;
  while (sinks.size() > opt.max_fanout) {
    std::vector<PinRef> next;
    for (std::size_t i = 0; i < sinks.size(); i += opt.max_fanout) {
      const std::size_t n = std::min(opt.max_fanout, sinks.size() - i);
      const Cell& cell = leaf_level ? leaf_cell : trunk_cell;
      const std::string base = "cts" + std::to_string(counter++);
      const NetId out = nl.add_net(base + "_net", NetKind::kClock);
      const GateId buf = nl.add_gate(base, cell, {clk, out});
      // Temporarily wired input to clk; its true parent is assigned when
      // the next level groups it. Reconnect the grouped sinks to `out`.
      for (std::size_t k = 0; k < n; ++k) {
        nl.reconnect_pin(sinks[i + k].gate, sinks[i + k].pin, out);
      }
      next.push_back({buf, 0});  // pin 0 = buffer input A
      ++stats.num_buffers;
    }
    sinks = std::move(next);
    ++stats.num_levels;
    leaf_level = false;
  }
  // The surviving group stays on the root clock net; buffers created above
  // were provisionally attached to `clk` already, and the grouping loop
  // re-parents all but the last level, so nothing further to do.
  return stats;
}

}  // namespace xtalk::netlist
