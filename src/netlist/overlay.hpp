// Copy-on-write overlay over an immutable base Netlist.
//
// ECO editing must not disturb the design being edited: other sessions (and
// the from-scratch oracle baseline) keep reading the base object. The
// overlay starts as a borrowed pointer and clones the netlist on the first
// mutating access; a Netlist copy is cheap relative to re-extraction (flat
// vectors plus borrowed Cell pointers, which shallow-copy correctly because
// cells are owned by the CellLibrary, not the netlist).
#pragma once

#include <memory>

#include "netlist/netlist.hpp"

namespace xtalk::netlist {

class NetlistOverlay {
 public:
  explicit NetlistOverlay(const Netlist& base) : base_(&base) {}

  /// Current view: the private copy if any mutation happened, else the base.
  const Netlist& get() const { return own_ ? *own_ : *base_; }

  /// Mutable view; clones the base on first call.
  Netlist& mutate() {
    if (!own_) own_ = std::make_unique<Netlist>(*base_);
    return *own_;
  }

  bool modified() const { return own_ != nullptr; }

 private:
  const Netlist* base_;
  std::unique_ptr<Netlist> own_;
};

}  // namespace xtalk::netlist
