// Event-free levelized logic simulation.
//
// Two jobs in this codebase: (a) prove that netlist transformations —
// wide-gate decomposition in the .bench parser, Verilog round-trips, clock
// tree insertion — preserve function, and (b) provide switching vectors
// for experiments that need realistic activity. Values are 0/1 (no X/Z;
// every net is driven after Netlist::validate()).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace xtalk::netlist {

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  std::size_t num_flops() const { return flops_.size(); }

  /// Evaluate the combinational network. `pi_values` is parallel to
  /// Netlist::primary_inputs() (the clock entry, if any, is ignored);
  /// `ff_state` is parallel to the simulator's flop order (Q values).
  /// Returns one value per net.
  std::vector<std::uint8_t> evaluate(
      const std::vector<std::uint8_t>& pi_values,
      const std::vector<std::uint8_t>& ff_state) const;

  /// One clock cycle: evaluate, then latch every flop's D into the state.
  /// Returns the evaluated net values of the cycle.
  std::vector<std::uint8_t> step(const std::vector<std::uint8_t>& pi_values,
                                 std::vector<std::uint8_t>& ff_state) const;

  /// Output values (parallel to primary_outputs()) from a net-value vector.
  std::vector<std::uint8_t> outputs(
      const std::vector<std::uint8_t>& net_values) const;

  /// Flop gate ids in state order (stable: ascending gate id).
  const std::vector<GateId>& flops() const { return flops_; }

 private:
  const Netlist* netlist_;
  LevelizedDag dag_;
  std::vector<GateId> flops_;
  std::vector<std::int32_t> flop_index_;  ///< gate id -> state slot or -1
};

/// Evaluate a single cell function on explicit input values (exposed for
/// tests). `inputs` is ordered like the cell's input pins.
std::uint8_t evaluate_cell(const Cell& cell,
                           const std::vector<std::uint8_t>& inputs);

}  // namespace xtalk::netlist
