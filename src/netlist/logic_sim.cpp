#include "netlist/logic_sim.hpp"

#include <stdexcept>

namespace xtalk::netlist {

std::uint8_t evaluate_cell(const Cell& cell,
                           const std::vector<std::uint8_t>& inputs) {
  auto all = [&](bool want) {
    for (const std::uint8_t v : inputs) {
      if ((v != 0) != want) return false;
    }
    return true;
  };
  auto any = [&](bool want) {
    for (const std::uint8_t v : inputs) {
      if ((v != 0) == want) return true;
    }
    return false;
  };
  switch (cell.func()) {
    case CellFunc::kInv:
      return inputs[0] ? 0 : 1;
    case CellFunc::kBuf:
      return inputs[0] ? 1 : 0;
    case CellFunc::kNand:
      return all(true) ? 0 : 1;
    case CellFunc::kAnd:
      return all(true) ? 1 : 0;
    case CellFunc::kNor:
      return any(true) ? 0 : 1;
    case CellFunc::kOr:
      return any(true) ? 1 : 0;
    case CellFunc::kXor:
      return (inputs[0] != 0) != (inputs[1] != 0) ? 1 : 0;
    case CellFunc::kXnor:
      return (inputs[0] != 0) == (inputs[1] != 0) ? 1 : 0;
    case CellFunc::kAoi21:
      return ((inputs[0] && inputs[1]) || inputs[2]) ? 0 : 1;
    case CellFunc::kOai21:
      return ((inputs[0] || inputs[1]) && inputs[2]) ? 0 : 1;
    case CellFunc::kDff:
      throw std::logic_error("DFF has no combinational function");
  }
  return 0;
}

LogicSimulator::LogicSimulator(const Netlist& nl)
    : netlist_(&nl), dag_(levelize(nl)), flops_(nl.sequential_gates()) {
  flop_index_.assign(nl.num_gates(), -1);
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    flop_index_[flops_[i]] = static_cast<std::int32_t>(i);
  }
}

std::vector<std::uint8_t> LogicSimulator::evaluate(
    const std::vector<std::uint8_t>& pi_values,
    const std::vector<std::uint8_t>& ff_state) const {
  const Netlist& nl = *netlist_;
  if (pi_values.size() != nl.primary_inputs().size()) {
    throw std::invalid_argument("pi_values size mismatch");
  }
  if (ff_state.size() != flops_.size()) {
    throw std::invalid_argument("ff_state size mismatch");
  }
  std::vector<std::uint8_t> value(nl.num_nets(), 0);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    value[nl.primary_inputs()[i]] = pi_values[i] ? 1 : 0;
  }
  std::vector<std::uint8_t> inputs;
  for (const GateId g : dag_.topo_order) {
    const Gate& gate = nl.gate(g);
    const Cell& cell = *gate.cell;
    const NetId out = gate.pin_nets[cell.output_pin()];
    if (cell.is_sequential()) {
      value[out] = ff_state[static_cast<std::size_t>(flop_index_[g])];
      continue;
    }
    inputs.clear();
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (cell.pins()[p].dir == PinDir::kInput) {
        inputs.push_back(value[gate.pin_nets[p]]);
      }
    }
    value[out] = evaluate_cell(cell, inputs);
  }
  return value;
}

std::vector<std::uint8_t> LogicSimulator::step(
    const std::vector<std::uint8_t>& pi_values,
    std::vector<std::uint8_t>& ff_state) const {
  const std::vector<std::uint8_t> value = evaluate(pi_values, ff_state);
  const Netlist& nl = *netlist_;
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const Gate& ff = nl.gate(flops_[i]);
    ff_state[i] = value[ff.pin_nets[ff.cell->pin_index("D")]];
  }
  return value;
}

std::vector<std::uint8_t> LogicSimulator::outputs(
    const std::vector<std::uint8_t>& net_values) const {
  std::vector<std::uint8_t> out;
  out.reserve(netlist_->primary_outputs().size());
  for (const NetId n : netlist_->primary_outputs()) {
    out.push_back(net_values[n]);
  }
  return out;
}

}  // namespace xtalk::netlist
