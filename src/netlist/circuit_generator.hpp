// Deterministic synthetic sequential circuit generator.
//
// The paper's tables run on ISCAS89 s35932 / s38417 / s38584 routed in a
// 0.5 um process. The original netlists are not redistributable, so the
// presets below reproduce their published cell and flip-flop counts and a
// plausible logic depth / fanout distribution; all structure is a pure
// function of the seed (see DESIGN.md §3 for the substitution rationale).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace xtalk::netlist {

struct GeneratorSpec {
  std::string name = "synth";
  std::uint64_t seed = 1;
  std::size_t num_cells = 1000;  ///< total gates including flip-flops
  std::size_t num_ffs = 100;
  std::size_t num_pis = 16;
  std::size_t num_pos = 16;
  std::size_t depth = 20;        ///< combinational logic levels
  double locality = 0.75;        ///< probability a fanin comes from the
                                 ///< immediately preceding level
  std::size_t max_fanout = 10;   ///< soft fanout cap during selection
};

/// Generate a connected, acyclic-between-FFs sequential circuit matching
/// the spec. The result validates and levelizes cleanly.
Netlist generate_circuit(const GeneratorSpec& spec, const CellLibrary& library);

/// Presets reproducing the paper's three circuits (cell counts from the
/// table captions: 17900 / 23922 / 20812 cells).
GeneratorSpec s35932_like();
GeneratorSpec s38417_like();
GeneratorSpec s38584_like();

/// Scaled-down variant (about `cells` cells) for tests and runtime sweeps,
/// same statistics otherwise.
GeneratorSpec scaled_spec(std::string name, std::uint64_t seed,
                          std::size_t cells, std::size_t depth);

}  // namespace xtalk::netlist
