#include "netlist/circuit_generator.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace xtalk::netlist {

namespace {

struct MixEntry {
  CellFunc func;
  std::size_t fanin;
  double weight;
};

/// Cell mix loosely matching ISCAS89 gate statistics (NAND/NOR dominated,
/// a tail of wider and complex gates).
const std::vector<MixEntry>& cell_mix() {
  static const std::vector<MixEntry> mix = {
      {CellFunc::kNand, 2, 0.28}, {CellFunc::kNor, 2, 0.15},
      {CellFunc::kInv, 1, 0.16},  {CellFunc::kNand, 3, 0.08},
      {CellFunc::kNor, 3, 0.05},  {CellFunc::kAnd, 2, 0.07},
      {CellFunc::kOr, 2, 0.06},   {CellFunc::kBuf, 1, 0.04},
      {CellFunc::kNand, 4, 0.03}, {CellFunc::kNor, 4, 0.02},
      {CellFunc::kXor, 2, 0.02},  {CellFunc::kAoi21, 3, 0.02},
      {CellFunc::kOai21, 3, 0.02},
  };
  return mix;
}

const MixEntry& pick_cell(util::Rng& rng) {
  const auto& mix = cell_mix();
  double total = 0.0;
  for (const MixEntry& m : mix) total += m.weight;
  double r = rng.next_double() * total;
  for (const MixEntry& m : mix) {
    r -= m.weight;
    if (r <= 0.0) return m;
  }
  return mix.back();
}

}  // namespace

Netlist generate_circuit(const GeneratorSpec& spec, const CellLibrary& lib) {
  assert(spec.num_cells > spec.num_ffs);
  assert(spec.depth >= 1);
  util::Rng rng(spec.seed);
  Netlist nl(lib);

  // Clock first so the tree builder finds it.
  const NetId clk = nl.add_net("CLK", NetKind::kClock);
  nl.mark_primary_input(clk);
  nl.set_clock_net(clk);

  // Level 0 sources: primary inputs and flip-flop outputs.
  std::vector<std::vector<NetId>> nets_by_level(spec.depth + 1);
  for (std::size_t i = 0; i < spec.num_pis; ++i) {
    const NetId n = nl.add_net("pi" + std::to_string(i));
    nl.mark_primary_input(n);
    nets_by_level[0].push_back(n);
  }
  std::vector<NetId> ffq;
  ffq.reserve(spec.num_ffs);
  for (std::size_t i = 0; i < spec.num_ffs; ++i) {
    const NetId q = nl.add_net("ffq" + std::to_string(i));
    ffq.push_back(q);
    nets_by_level[0].push_back(q);
  }

  std::vector<std::size_t> fanout(nl.num_nets(), 0);
  auto grow_fanout = [&fanout](NetId id) {
    if (id >= fanout.size()) fanout.resize(id + 1, 0);
    ++fanout[id];
  };

  // Pick a fanin net for a gate at `level`, preferring the previous level
  // and lightly-loaded nets.
  auto pick_input = [&](std::size_t level,
                        const std::vector<NetId>& already) -> NetId {
    for (int attempt = 0; attempt < 8; ++attempt) {
      std::size_t src_level;
      if (rng.next_bool(spec.locality) || level == 1) {
        src_level = level - 1;
      } else {
        src_level = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(level - 1)));
      }
      const auto& pool = nets_by_level[src_level];
      if (pool.empty()) continue;
      const NetId cand = pool[rng.next_below(pool.size())];
      if (std::find(already.begin(), already.end(), cand) != already.end())
        continue;
      if (fanout[cand] >= spec.max_fanout && !rng.next_bool(0.05)) continue;
      return cand;
    }
    // Fall back to any previous-level net, duplicates allowed only across
    // different attempts exhausting the pool.
    const auto& pool = nets_by_level[level - 1];
    return pool[rng.next_below(pool.size())];
  };

  // Distribute combinational gates over the levels.
  const std::size_t n_comb = spec.num_cells - spec.num_ffs;
  std::vector<std::size_t> gates_per_level(spec.depth, n_comb / spec.depth);
  for (std::size_t i = 0; i < n_comb % spec.depth; ++i) ++gates_per_level[i];
  for (std::size_t l = 0; l < spec.depth; ++l) {
    if (gates_per_level[l] == 0) gates_per_level[l] = 1;
  }

  std::size_t gate_counter = 0;
  for (std::size_t level = 1; level <= spec.depth; ++level) {
    for (std::size_t k = 0; k < gates_per_level[level - 1]; ++k) {
      const MixEntry& mix = pick_cell(rng);
      const Cell& cell = lib.by_func(mix.func, mix.fanin);
      std::vector<NetId> ins;
      ins.reserve(mix.fanin);
      for (std::size_t p = 0; p < mix.fanin; ++p) {
        const NetId in = pick_input(level, ins);
        ins.push_back(in);
        grow_fanout(in);
      }
      const NetId out = nl.add_net("n" + std::to_string(gate_counter));
      std::vector<NetId> pins = ins;
      pins.push_back(out);
      nl.add_gate("g" + std::to_string(gate_counter), cell, std::move(pins));
      ++gate_counter;
      nets_by_level[level].push_back(out);
      if (out >= fanout.size()) fanout.resize(out + 1, 0);
    }
  }

  // Collect dangling nets (no sinks yet), deepest first, to feed D pins and
  // primary outputs.
  std::vector<NetId> dangling;
  for (std::size_t level = spec.depth; level >= 1; --level) {
    for (const NetId n : nets_by_level[level]) {
      if (fanout[n] == 0) dangling.push_back(n);
    }
  }

  std::size_t dangling_pos = 0;
  auto next_sink_net = [&](NetId avoid) -> NetId {
    while (dangling_pos < dangling.size()) {
      const NetId n = dangling[dangling_pos++];
      if (n != avoid) return n;
    }
    // Out of dangling nets: pick a random deep net.
    for (int attempt = 0;; ++attempt) {
      const std::size_t level =
          spec.depth - rng.next_below(std::max<std::size_t>(spec.depth / 3, 1));
      const auto& pool = nets_by_level[level];
      if (pool.empty()) continue;
      const NetId n = pool[rng.next_below(pool.size())];
      if (n != avoid || attempt > 16) return n;
    }
  };

  // Flip-flops: D from deep / dangling logic, Q created earlier.
  const Cell& ff_cell = lib.by_func(CellFunc::kDff, 1);
  for (std::size_t i = 0; i < spec.num_ffs; ++i) {
    const NetId d = next_sink_net(/*avoid=*/ffq[i]);
    grow_fanout(d);
    nl.add_gate("ff" + std::to_string(i), ff_cell, {d, clk, ffq[i]});
  }

  // Primary outputs.
  std::vector<char> is_po(nl.num_nets(), 0);
  for (std::size_t i = 0; i < spec.num_pos; ++i) {
    const NetId n = next_sink_net(kNoNet);
    if (is_po[n]) continue;
    is_po[n] = 1;
    nl.mark_primary_output(n);
    grow_fanout(n);
  }
  // Whatever is still dangling — including flip-flop outputs no gate picked
  // up — becomes an additional primary output so that every net is
  // observable.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).is_primary_input || is_po[n]) continue;
    if (!nl.net(n).sinks.empty()) continue;
    is_po[n] = 1;
    nl.mark_primary_output(n);
  }

  nl.validate();
  return nl;
}

GeneratorSpec s35932_like() {
  GeneratorSpec s;
  s.name = "s35932_like";
  s.seed = 35932;
  s.num_cells = 17900;
  s.num_ffs = 1728;
  s.num_pis = 35;
  s.num_pos = 320;
  s.depth = 14;
  return s;
}

GeneratorSpec s38417_like() {
  GeneratorSpec s;
  s.name = "s38417_like";
  s.seed = 38417;
  s.num_cells = 23922;
  s.num_ffs = 1636;
  s.num_pis = 28;
  s.num_pos = 106;
  s.depth = 33;
  return s;
}

GeneratorSpec s38584_like() {
  GeneratorSpec s;
  s.name = "s38584_like";
  s.seed = 38584;
  s.num_cells = 20812;
  s.num_ffs = 1426;
  s.num_pis = 38;
  s.num_pos = 304;
  s.depth = 25;
  return s;
}

GeneratorSpec scaled_spec(std::string name, std::uint64_t seed,
                          std::size_t cells, std::size_t depth) {
  GeneratorSpec s;
  s.name = std::move(name);
  s.seed = seed;
  s.num_cells = cells;
  s.num_ffs = std::max<std::size_t>(cells / 12, 2);
  s.num_pis = std::max<std::size_t>(cells / 100, 4);
  s.num_pos = std::max<std::size_t>(cells / 80, 4);
  s.depth = depth;
  return s;
}

}  // namespace xtalk::netlist
