#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xtalk::netlist {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

struct ParsedGate {
  std::string output;
  std::string func;
  std::vector<std::string> args;
  std::size_t line_no = 0;
};

bool func_from_name(const std::string& f, CellFunc& out) {
  if (f == "NOT" || f == "INV") { out = CellFunc::kInv; return true; }
  if (f == "BUF" || f == "BUFF") { out = CellFunc::kBuf; return true; }
  if (f == "AND") { out = CellFunc::kAnd; return true; }
  if (f == "NAND") { out = CellFunc::kNand; return true; }
  if (f == "OR") { out = CellFunc::kOr; return true; }
  if (f == "NOR") { out = CellFunc::kNor; return true; }
  if (f == "XOR") { out = CellFunc::kXor; return true; }
  if (f == "XNOR") { out = CellFunc::kXnor; return true; }
  if (f == "DFF") { out = CellFunc::kDff; return true; }
  return false;
}

/// Largest direct fanin the library supports per function.
std::size_t max_fanin(CellFunc func) {
  switch (func) {
    case CellFunc::kNand:
    case CellFunc::kNor:
      return 4;
    case CellFunc::kAnd:
    case CellFunc::kOr:
      return 3;
    default:
      return 2;
  }
}

/// Decompose a wide AND/OR/NAND/NOR into a balanced tree of narrower
/// gates, creating intermediate nets named <out>$t<n>. Returns the list of
/// (cell, output net name, input net names) gates to instantiate, in
/// topological order.
struct TreeGate {
  CellFunc func;
  std::string output;
  std::vector<std::string> inputs;
};

void decompose(CellFunc func, const std::string& output,
               std::vector<std::string> inputs, std::vector<TreeGate>& out) {
  const std::size_t width = max_fanin(func);
  if (inputs.size() <= width) {
    out.push_back({func, output, std::move(inputs)});
    return;
  }
  // Reduce with the *non-inverting* base function, inverting only at the
  // root for NAND/NOR: NAND(a..z) == NOT(AND(a..z)).
  const bool inverting = func == CellFunc::kNand || func == CellFunc::kNor;
  const CellFunc base = (func == CellFunc::kNand || func == CellFunc::kAnd)
                            ? CellFunc::kAnd
                            : CellFunc::kOr;
  const std::size_t base_width = max_fanin(base);
  std::size_t counter = 0;
  std::vector<std::string> level = std::move(inputs);
  while (level.size() > base_width) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i < level.size(); i += base_width) {
      const std::size_t n = std::min(base_width, level.size() - i);
      if (n == 1) {
        next.push_back(level[i]);
        continue;
      }
      std::string mid = output + "$t" + std::to_string(counter++);
      out.push_back({base,
                     mid,
                     {level.begin() + static_cast<std::ptrdiff_t>(i),
                      level.begin() + static_cast<std::ptrdiff_t>(i + n)}});
      next.push_back(std::move(mid));
    }
    level = std::move(next);
  }
  out.push_back({inverting ? (base == CellFunc::kAnd ? CellFunc::kNand
                                                     : CellFunc::kNor)
                           : base,
                 output, std::move(level)});
}

}  // namespace

Netlist parse_bench(std::string_view text, const CellLibrary& library,
                    const util::ParseLimits& limits, util::DiagSink* sink) {
  util::ParseDiag pd("<bench>", limits, sink);
  Netlist nl(library);

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<ParsedGate> gates;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::size_t tokens = 0;
  auto count_token = [&] {
    if (++tokens > limits.max_tokens) {
      pd.fatal(util::DiagCode::kInputLimit,
               static_cast<std::int64_t>(line_no), -1,
               "token count exceeds limit (" +
                   std::to_string(limits.max_tokens) + ")");
    }
  };
  bool recovering = true;
  while (recovering && pos <= text.size()) {
    const std::size_t nl_pos = text.find('\n', pos);
    const std::size_t raw_len =
        (nl_pos == std::string_view::npos ? text.size() : nl_pos) - pos;
    ++line_no;
    if (raw_len > limits.max_line_length) {
      pd.fatal(util::DiagCode::kInputLimit,
               static_cast<std::int64_t>(line_no), -1,
               "line length " + std::to_string(raw_len) +
                   " exceeds limit (" +
                   std::to_string(limits.max_line_length) + ")");
    }
    std::string line = trim(text.substr(pos, raw_len));
    pos = nl_pos == std::string_view::npos ? text.size() + 1 : nl_pos + 1;
    if (line.empty() || line[0] == '#') continue;
    // Recovery is per-line: every diagnostic below abandons this line only
    // and the loop continues with the next one (until max_errors trips).
    auto bad_line = [&](const std::string& msg) {
      recovering = pd.error(static_cast<std::int64_t>(line_no), -1, msg);
    };

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        bad_line("expected INPUT(...) or OUTPUT(...): '" + line + "'");
        continue;
      }
      const std::string kw = upper(trim(line.substr(0, open)));
      const std::string arg = trim(line.substr(open + 1, close - open - 1));
      count_token();
      if (arg.empty()) {
        bad_line("empty port name");
        continue;
      }
      if (kw == "INPUT") {
        inputs.push_back(arg);
      } else if (kw == "OUTPUT") {
        outputs.push_back(arg);
      } else {
        bad_line("unknown directive '" + kw + "'");
      }
      continue;
    }

    ParsedGate g;
    g.line_no = line_no;
    g.output = trim(line.substr(0, eq));
    if (g.output.empty()) {
      bad_line("empty gate output name");
      continue;
    }
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      bad_line("expected FUNC(args): '" + rhs + "'");
      continue;
    }
    g.func = upper(trim(rhs.substr(0, open)));
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string a;
    bool args_ok = true;
    while (std::getline(args, a, ',')) {
      a = trim(a);
      count_token();
      if (a.empty()) {
        bad_line("empty argument");
        args_ok = false;
        break;
      }
      g.args.push_back(a);
    }
    if (!args_ok) continue;
    if (g.args.empty()) {
      bad_line("gate with no inputs");
      continue;
    }
    if (g.args.size() > limits.max_gate_args) {
      bad_line("gate fanin " + std::to_string(g.args.size()) +
               " exceeds limit (" + std::to_string(limits.max_gate_args) +
               ")");
      continue;
    }
    if (gates.size() >= limits.max_instances) {
      pd.fatal(util::DiagCode::kInputLimit,
               static_cast<std::int64_t>(line_no), -1,
               "instance count exceeds limit (" +
                   std::to_string(limits.max_instances) + ")");
    }
    gates.push_back(std::move(g));
  }

  // Create the implicit clock net first if any DFF is present, so it gets a
  // stable id.
  const bool has_ff = std::any_of(gates.begin(), gates.end(),
                                  [](const ParsedGate& g) {
                                    return upper(g.func) == "DFF";
                                  });
  if (has_ff) {
    const NetId clk = nl.add_net("CLK", NetKind::kClock);
    nl.mark_primary_input(clk);
    nl.set_clock_net(clk);
  }

  auto check_nets = [&](std::size_t line) {
    if (nl.num_nets() > limits.max_nets) {
      pd.fatal(util::DiagCode::kInputLimit, static_cast<std::int64_t>(line),
               -1,
               "net count exceeds limit (" + std::to_string(limits.max_nets) +
                   ")");
    }
  };

  for (const std::string& in : inputs) {
    if (!recovering) break;
    try {
      nl.mark_primary_input(nl.add_net(in));
    } catch (const std::exception& e) {
      recovering = pd.error(-1, -1, e.what());
    }
    check_nets(0);
  }

  // Semantic errors (unknown function, bad arity, a net driven twice) skip
  // the offending gate and keep going — the netlist core's own
  // std::runtime_error throws become recorded diagnostics here. Limit hits
  // (DiagError from check_nets) stay fatal.
  std::size_t ff_index = 0;
  for (const ParsedGate& g : gates) {
    if (!recovering) break;
    auto bad_gate = [&](const std::string& msg) {
      recovering = pd.error(static_cast<std::int64_t>(g.line_no), -1, msg);
    };
    try {
      CellFunc func;
      if (!func_from_name(g.func, func)) {
        bad_gate("unknown function '" + g.func + "'");
        continue;
      }
      if (func == CellFunc::kDff) {
        if (g.args.size() != 1) {
          bad_gate("DFF takes exactly one input");
          continue;
        }
        const Cell& cell = library.by_func(CellFunc::kDff, 1);
        const NetId d = nl.add_net(g.args[0]);
        const NetId q = nl.add_net(g.output);
        nl.add_gate("ff" + std::to_string(ff_index++) + "_" + g.output, cell,
                    {d, nl.clock_net(), q});
        check_nets(g.line_no);
        continue;
      }
      if ((func == CellFunc::kInv || func == CellFunc::kBuf) &&
          g.args.size() != 1) {
        bad_gate(g.func + " takes exactly one input");
        continue;
      }
      if ((func == CellFunc::kXor || func == CellFunc::kXnor) &&
          g.args.size() != 2) {
        bad_gate(g.func + " takes exactly two inputs");
        continue;
      }
      if (g.args.size() == 1 && func != CellFunc::kInv &&
          func != CellFunc::kBuf) {
        // Single-input AND/OR/NAND/NOR degenerate to BUF/NOT.
        const CellFunc unary =
            (func == CellFunc::kNand || func == CellFunc::kNor)
                ? CellFunc::kInv
                : CellFunc::kBuf;
        const Cell& cell = library.by_func(unary, 1);
        nl.add_gate(g.output, cell,
                    {nl.add_net(g.args[0]), nl.add_net(g.output)});
        check_nets(g.line_no);
        continue;
      }
      std::vector<TreeGate> tree;
      decompose(func, g.output, g.args, tree);
      for (TreeGate& tg : tree) {
        const Cell& cell = library.by_func(tg.func, tg.inputs.size());
        std::vector<NetId> pins;
        pins.reserve(tg.inputs.size() + 1);
        for (const std::string& in : tg.inputs) pins.push_back(nl.add_net(in));
        pins.push_back(nl.add_net(tg.output));
        nl.add_gate(tg.output, cell, std::move(pins));
      }
      check_nets(g.line_no);
    } catch (const util::DiagError&) {
      throw;  // a fatal limit hit, not a recoverable gate error
    } catch (const std::exception& e) {
      bad_gate(e.what());
    }
  }

  for (const std::string& out : outputs) {
    if (!recovering) break;
    const NetId id = nl.find_net(out);
    if (id == kNoNet) {
      recovering = pd.error(-1, -1, "OUTPUT(" + out + ") is never driven");
      continue;
    }
    nl.mark_primary_output(id);
  }

  pd.finish();
  try {
    nl.validate();
  } catch (const std::exception& e) {
    // Structural inconsistency that survived a clean parse: still routed
    // through DiagError so every front-end failure carries a Diagnostic.
    pd.fatal(util::DiagCode::kParseError, -1, -1, e.what());
  }
  return nl;
}

Netlist parse_bench_file(const std::string& path, const CellLibrary& library,
                         const util::ParseLimits& limits,
                         util::DiagSink* sink) {
  std::ifstream in(path);
  if (!in) {
    util::ParseDiag pd(path, limits, sink);
    pd.fatal(util::DiagCode::kFileError, -1, -1, "cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_bench(ss.str(), library, limits, sink);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# written by xtalk-sta\n";
  for (const NetId id : nl.primary_inputs()) {
    if (id == nl.clock_net()) continue;  // implicit in the format
    os << "INPUT(" << nl.net(id).name << ")\n";
  }
  for (const NetId id : nl.primary_outputs()) {
    os << "OUTPUT(" << nl.net(id).name << ")\n";
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const Cell& cell = *gate.cell;
    std::string func;
    switch (cell.func()) {
      case CellFunc::kInv: func = "NOT"; break;
      case CellFunc::kBuf: func = "BUF"; break;
      case CellFunc::kNand: func = "NAND"; break;
      case CellFunc::kNor: func = "NOR"; break;
      case CellFunc::kAnd: func = "AND"; break;
      case CellFunc::kOr: func = "OR"; break;
      case CellFunc::kXor: func = "XOR"; break;
      case CellFunc::kXnor: func = "XNOR"; break;
      case CellFunc::kAoi21: func = "AOI21"; break;
      case CellFunc::kOai21: func = "OAI21"; break;
      case CellFunc::kDff: func = "DFF"; break;
    }
    os << nl.net(gate.pin_nets[cell.output_pin()]).name << " = " << func << "(";
    bool first = true;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      const PinDir dir = cell.pins()[p].dir;
      if (dir == PinDir::kOutput) continue;
      if (dir == PinDir::kClock) continue;  // implicit clock
      if (!first) os << ", ";
      first = false;
      os << nl.net(gate.pin_nets[p]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace xtalk::netlist
