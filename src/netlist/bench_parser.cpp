#include "netlist/bench_parser.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xtalk::netlist {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error("bench parse error, line " +
                           std::to_string(line_no) + ": " + msg);
}

struct ParsedGate {
  std::string output;
  std::string func;
  std::vector<std::string> args;
  std::size_t line_no = 0;
};

CellFunc func_from_name(const std::string& f, std::size_t line_no) {
  if (f == "NOT" || f == "INV") return CellFunc::kInv;
  if (f == "BUF" || f == "BUFF") return CellFunc::kBuf;
  if (f == "AND") return CellFunc::kAnd;
  if (f == "NAND") return CellFunc::kNand;
  if (f == "OR") return CellFunc::kOr;
  if (f == "NOR") return CellFunc::kNor;
  if (f == "XOR") return CellFunc::kXor;
  if (f == "XNOR") return CellFunc::kXnor;
  if (f == "DFF") return CellFunc::kDff;
  fail(line_no, "unknown function '" + f + "'");
}

/// Largest direct fanin the library supports per function.
std::size_t max_fanin(CellFunc func) {
  switch (func) {
    case CellFunc::kNand:
    case CellFunc::kNor:
      return 4;
    case CellFunc::kAnd:
    case CellFunc::kOr:
      return 3;
    default:
      return 2;
  }
}

/// Decompose a wide AND/OR/NAND/NOR into a balanced tree of narrower
/// gates, creating intermediate nets named <out>$t<n>. Returns the list of
/// (cell, output net name, input net names) gates to instantiate, in
/// topological order.
struct TreeGate {
  CellFunc func;
  std::string output;
  std::vector<std::string> inputs;
};

void decompose(CellFunc func, const std::string& output,
               std::vector<std::string> inputs, std::vector<TreeGate>& out) {
  const std::size_t width = max_fanin(func);
  if (inputs.size() <= width) {
    out.push_back({func, output, std::move(inputs)});
    return;
  }
  // Reduce with the *non-inverting* base function, inverting only at the
  // root for NAND/NOR: NAND(a..z) == NOT(AND(a..z)).
  const bool inverting = func == CellFunc::kNand || func == CellFunc::kNor;
  const CellFunc base = (func == CellFunc::kNand || func == CellFunc::kAnd)
                            ? CellFunc::kAnd
                            : CellFunc::kOr;
  const std::size_t base_width = max_fanin(base);
  std::size_t counter = 0;
  std::vector<std::string> level = std::move(inputs);
  while (level.size() > base_width) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i < level.size(); i += base_width) {
      const std::size_t n = std::min(base_width, level.size() - i);
      if (n == 1) {
        next.push_back(level[i]);
        continue;
      }
      std::string mid = output + "$t" + std::to_string(counter++);
      out.push_back({base,
                     mid,
                     {level.begin() + static_cast<std::ptrdiff_t>(i),
                      level.begin() + static_cast<std::ptrdiff_t>(i + n)}});
      next.push_back(std::move(mid));
    }
    level = std::move(next);
  }
  out.push_back({inverting ? (base == CellFunc::kAnd ? CellFunc::kNand
                                                     : CellFunc::kNor)
                           : base,
                 output, std::move(level)});
}

}  // namespace

Netlist parse_bench(std::string_view text, const CellLibrary& library) {
  Netlist nl(library);

  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<ParsedGate> gates;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl_pos = text.find('\n', pos);
    std::string line =
        trim(text.substr(pos, nl_pos == std::string_view::npos ? text.size() - pos
                                                               : nl_pos - pos));
    pos = nl_pos == std::string_view::npos ? text.size() + 1 : nl_pos + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, "expected INPUT(...) or OUTPUT(...): '" + line + "'");
      }
      const std::string kw = upper(trim(line.substr(0, open)));
      const std::string arg = trim(line.substr(open + 1, close - open - 1));
      if (arg.empty()) fail(line_no, "empty port name");
      if (kw == "INPUT") {
        inputs.push_back(arg);
      } else if (kw == "OUTPUT") {
        outputs.push_back(arg);
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    ParsedGate g;
    g.line_no = line_no;
    g.output = trim(line.substr(0, eq));
    if (g.output.empty()) fail(line_no, "empty gate output name");
    const std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(line_no, "expected FUNC(args): '" + rhs + "'");
    }
    g.func = upper(trim(rhs.substr(0, open)));
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string a;
    while (std::getline(args, a, ',')) {
      a = trim(a);
      if (a.empty()) fail(line_no, "empty argument");
      g.args.push_back(a);
    }
    if (g.args.empty()) fail(line_no, "gate with no inputs");
    gates.push_back(std::move(g));
  }

  // Create the implicit clock net first if any DFF is present, so it gets a
  // stable id.
  const bool has_ff = std::any_of(gates.begin(), gates.end(),
                                  [](const ParsedGate& g) {
                                    return upper(g.func) == "DFF";
                                  });
  if (has_ff) {
    const NetId clk = nl.add_net("CLK", NetKind::kClock);
    nl.mark_primary_input(clk);
    nl.set_clock_net(clk);
  }

  for (const std::string& in : inputs) {
    nl.mark_primary_input(nl.add_net(in));
  }

  std::size_t ff_index = 0;
  for (const ParsedGate& g : gates) {
    const CellFunc func = func_from_name(g.func, g.line_no);
    if (func == CellFunc::kDff) {
      if (g.args.size() != 1) fail(g.line_no, "DFF takes exactly one input");
      const Cell& cell = library.by_func(CellFunc::kDff, 1);
      const NetId d = nl.add_net(g.args[0]);
      const NetId q = nl.add_net(g.output);
      nl.add_gate("ff" + std::to_string(ff_index++) + "_" + g.output, cell,
                  {d, nl.clock_net(), q});
      continue;
    }
    if ((func == CellFunc::kInv || func == CellFunc::kBuf) &&
        g.args.size() != 1) {
      fail(g.line_no, g.func + " takes exactly one input");
    }
    if ((func == CellFunc::kXor || func == CellFunc::kXnor) &&
        g.args.size() != 2) {
      fail(g.line_no, g.func + " takes exactly two inputs");
    }
    if (g.args.size() == 1 && func != CellFunc::kInv && func != CellFunc::kBuf) {
      // Single-input AND/OR/NAND/NOR degenerate to BUF/NOT.
      const CellFunc unary = (func == CellFunc::kNand || func == CellFunc::kNor)
                                 ? CellFunc::kInv
                                 : CellFunc::kBuf;
      const Cell& cell = library.by_func(unary, 1);
      nl.add_gate(g.output, cell, {nl.add_net(g.args[0]), nl.add_net(g.output)});
      continue;
    }
    std::vector<TreeGate> tree;
    decompose(func, g.output, g.args, tree);
    for (TreeGate& tg : tree) {
      const Cell& cell = library.by_func(tg.func, tg.inputs.size());
      std::vector<NetId> pins;
      pins.reserve(tg.inputs.size() + 1);
      for (const std::string& in : tg.inputs) pins.push_back(nl.add_net(in));
      pins.push_back(nl.add_net(tg.output));
      nl.add_gate(tg.output, cell, std::move(pins));
    }
  }

  for (const std::string& out : outputs) {
    const NetId id = nl.find_net(out);
    if (id == kNoNet) {
      throw std::runtime_error("OUTPUT(" + out + ") is never driven");
    }
    nl.mark_primary_output(id);
  }

  nl.validate();
  return nl;
}

Netlist parse_bench_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_bench(ss.str(), library);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream os;
  os << "# written by xtalk-sta\n";
  for (const NetId id : nl.primary_inputs()) {
    if (id == nl.clock_net()) continue;  // implicit in the format
    os << "INPUT(" << nl.net(id).name << ")\n";
  }
  for (const NetId id : nl.primary_outputs()) {
    os << "OUTPUT(" << nl.net(id).name << ")\n";
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const Cell& cell = *gate.cell;
    std::string func;
    switch (cell.func()) {
      case CellFunc::kInv: func = "NOT"; break;
      case CellFunc::kBuf: func = "BUF"; break;
      case CellFunc::kNand: func = "NAND"; break;
      case CellFunc::kNor: func = "NOR"; break;
      case CellFunc::kAnd: func = "AND"; break;
      case CellFunc::kOr: func = "OR"; break;
      case CellFunc::kXor: func = "XOR"; break;
      case CellFunc::kXnor: func = "XNOR"; break;
      case CellFunc::kAoi21: func = "AOI21"; break;
      case CellFunc::kOai21: func = "OAI21"; break;
      case CellFunc::kDff: func = "DFF"; break;
    }
    os << nl.net(gate.pin_nets[cell.output_pin()]).name << " = " << func << "(";
    bool first = true;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      const PinDir dir = cell.pins()[p].dir;
      if (dir == PinDir::kOutput) continue;
      if (dir == PinDir::kClock) continue;  // implicit clock
      if (!first) os << ", ";
      first = false;
      os << nl.net(gate.pin_nets[p]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace xtalk::netlist
