#include "netlist/levelize.hpp"

#include <algorithm>
#include <stdexcept>

namespace xtalk::netlist {

bool is_timed_input(const Cell& cell, std::uint32_t pin) {
  const PinDir dir = cell.pins()[pin].dir;
  if (dir == PinDir::kOutput) return false;
  if (cell.is_sequential()) return dir == PinDir::kClock;
  return true;
}

LevelizedDag levelize(const Netlist& nl) {
  LevelizedDag dag;
  const std::size_t ng = nl.num_gates();
  dag.gate_level.assign(ng, 0);
  dag.net_level.assign(nl.num_nets(), 0);

  // In-degree over timed fanins driven by gates (primary-input fanins don't
  // count: they are available at time 0).
  std::vector<std::uint32_t> pending(ng, 0);
  for (GateId g = 0; g < ng; ++g) {
    const Gate& gate = nl.gate(g);
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (!is_timed_input(*gate.cell, p)) continue;
      const Net& net = nl.net(gate.pin_nets[p]);
      if (net.driver.gate != kNoGate) ++pending[g];
    }
  }

  std::vector<GateId> queue;
  for (GateId g = 0; g < ng; ++g) {
    if (pending[g] == 0) queue.push_back(g);
  }

  dag.topo_order.reserve(ng);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    dag.topo_order.push_back(g);
    const Gate& gate = nl.gate(g);
    // Level = 1 + max level of timed gate-driven fanins.
    std::uint32_t level = 0;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (!is_timed_input(*gate.cell, p)) continue;
      const Net& net = nl.net(gate.pin_nets[p]);
      if (net.driver.gate == kNoGate) continue;
      level = std::max(level, dag.gate_level[net.driver.gate] + 1);
    }
    dag.gate_level[g] = level;
    dag.num_levels = std::max(dag.num_levels, level + 1);
    const NetId out = gate.pin_nets[gate.cell->output_pin()];
    dag.net_level[out] = level + 1;
    // Release sinks whose timed fanin this output is.
    for (const PinRef& s : nl.net(out).sinks) {
      if (!is_timed_input(*nl.gate(s.gate).cell, s.pin)) continue;
      if (--pending[s.gate] == 0) queue.push_back(s.gate);
    }
  }

  if (dag.topo_order.size() != ng) {
    throw std::runtime_error("combinational cycle detected (" +
                             std::to_string(ng - dag.topo_order.size()) +
                             " gates unreachable)");
  }

  // Endpoints: nets feeding DFF D pins or primary outputs.
  std::vector<char> is_endpoint(nl.num_nets(), 0);
  for (GateId g = 0; g < ng; ++g) {
    const Gate& gate = nl.gate(g);
    if (!gate.cell->is_sequential()) continue;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (gate.cell->pins()[p].dir == PinDir::kInput) {
        is_endpoint[gate.pin_nets[p]] = 1;
      }
    }
  }
  for (const NetId po : nl.primary_outputs()) is_endpoint[po] = 1;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (is_endpoint[n]) dag.endpoint_nets.push_back(n);
  }

  // Bucket the topological order by level (stable counting sort, so the
  // within-level order is deterministic and independent of everything but
  // the netlist itself).
  dag.level_begin.assign(dag.num_levels + 1, 0);
  for (GateId g = 0; g < ng; ++g) ++dag.level_begin[dag.gate_level[g] + 1];
  for (std::uint32_t l = 1; l <= dag.num_levels; ++l) {
    dag.level_begin[l] += dag.level_begin[l - 1];
  }
  dag.level_order.resize(ng);
  std::vector<std::uint32_t> cursor(dag.level_begin.begin(),
                                    dag.level_begin.end() - 1);
  for (const GateId g : dag.topo_order) {
    dag.level_order[cursor[dag.gate_level[g]]++] = g;
  }
  return dag;
}

}  // namespace xtalk::netlist
