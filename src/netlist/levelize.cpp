#include "netlist/levelize.hpp"

#include <algorithm>
#include <stdexcept>

namespace xtalk::netlist {

bool is_timed_input(const Cell& cell, std::uint32_t pin) {
  const PinDir dir = cell.pins()[pin].dir;
  if (dir == PinDir::kOutput) return false;
  if (cell.is_sequential()) return dir == PinDir::kClock;
  return true;
}

LevelizedDag levelize(const Netlist& nl) {
  LevelizedDag dag;
  const std::size_t ng = nl.num_gates();
  dag.gate_level.assign(ng, 0);
  dag.net_level.assign(nl.num_nets(), 0);

  // In-degree over timed fanins driven by gates (primary-input fanins don't
  // count: they are available at time 0).
  std::vector<std::uint32_t> pending(ng, 0);
  for (GateId g = 0; g < ng; ++g) {
    const Gate& gate = nl.gate(g);
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (!is_timed_input(*gate.cell, p)) continue;
      const Net& net = nl.net(gate.pin_nets[p]);
      if (net.driver.gate != kNoGate) ++pending[g];
    }
  }

  std::vector<GateId> queue;
  for (GateId g = 0; g < ng; ++g) {
    if (pending[g] == 0) queue.push_back(g);
  }

  dag.topo_order.reserve(ng);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    dag.topo_order.push_back(g);
    const Gate& gate = nl.gate(g);
    // Level = 1 + max level of timed gate-driven fanins.
    std::uint32_t level = 0;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (!is_timed_input(*gate.cell, p)) continue;
      const Net& net = nl.net(gate.pin_nets[p]);
      if (net.driver.gate == kNoGate) continue;
      level = std::max(level, dag.gate_level[net.driver.gate] + 1);
    }
    dag.gate_level[g] = level;
    dag.num_levels = std::max(dag.num_levels, level + 1);
    const NetId out = gate.pin_nets[gate.cell->output_pin()];
    dag.net_level[out] = level + 1;
    // Release sinks whose timed fanin this output is.
    for (const PinRef& s : nl.net(out).sinks) {
      if (!is_timed_input(*nl.gate(s.gate).cell, s.pin)) continue;
      if (--pending[s.gate] == 0) queue.push_back(s.gate);
    }
  }

  if (dag.topo_order.size() != ng) {
    throw std::runtime_error("combinational cycle detected (" +
                             std::to_string(ng - dag.topo_order.size()) +
                             " gates unreachable)");
  }

  dag.endpoint_nets = collect_endpoint_nets(nl);

  // Bucket the topological order by level (stable counting sort, so the
  // within-level order is deterministic and independent of everything but
  // the netlist itself).
  dag.level_begin.assign(dag.num_levels + 1, 0);
  for (GateId g = 0; g < ng; ++g) ++dag.level_begin[dag.gate_level[g] + 1];
  for (std::uint32_t l = 1; l <= dag.num_levels; ++l) {
    dag.level_begin[l] += dag.level_begin[l - 1];
  }
  dag.level_order.resize(ng);
  std::vector<std::uint32_t> cursor(dag.level_begin.begin(),
                                    dag.level_begin.end() - 1);
  for (const GateId g : dag.topo_order) {
    dag.level_order[cursor[dag.gate_level[g]]++] = g;
  }
  return dag;
}

std::vector<NetId> collect_endpoint_nets(const Netlist& nl) {
  std::vector<char> is_endpoint(nl.num_nets(), 0);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (!gate.cell->is_sequential()) continue;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (gate.cell->pins()[p].dir == PinDir::kInput) {
        is_endpoint[gate.pin_nets[p]] = 1;
      }
    }
  }
  for (const NetId po : nl.primary_outputs()) is_endpoint[po] = 1;
  std::vector<NetId> endpoints;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (is_endpoint[n]) endpoints.push_back(n);
  }
  return endpoints;
}

std::vector<GateId> relevelize_affected(LevelizedDag& dag, const Netlist& nl,
                                        const std::vector<GateId>& seed_gates) {
  const std::size_t ng = nl.num_gates();
  std::vector<GateId> changed;

  // Worklist relaxation: recompute a gate's level from its current timed
  // fanins; if it moved, re-examine the fanout. Levels can both grow and
  // shrink (a sink can be retargeted to a shallower net). The relax counter
  // bounds each gate to |V| updates, so a cycle that slipped past the
  // editor's pre-check is reported instead of looping forever.
  std::vector<char> in_queue(ng, 0);
  std::vector<char> level_changed(ng, 0);
  std::vector<std::uint32_t> relax_count(ng, 0);
  std::vector<GateId> queue;
  for (const GateId g : seed_gates) {
    if (!in_queue[g]) {
      in_queue[g] = 1;
      queue.push_back(g);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    in_queue[g] = 0;
    const Gate& gate = nl.gate(g);
    std::uint32_t level = 0;
    for (std::uint32_t p = 0; p < gate.pin_nets.size(); ++p) {
      if (!is_timed_input(*gate.cell, p)) continue;
      const Net& net = nl.net(gate.pin_nets[p]);
      if (net.driver.gate == kNoGate) continue;
      level = std::max(level, dag.gate_level[net.driver.gate] + 1);
    }
    if (level == dag.gate_level[g]) continue;
    if (++relax_count[g] > ng) {
      throw std::runtime_error("combinational cycle detected during "
                               "incremental re-levelization");
    }
    dag.gate_level[g] = level;
    if (!level_changed[g]) {
      level_changed[g] = 1;
      changed.push_back(g);
    }
    const NetId out = gate.pin_nets[gate.cell->output_pin()];
    for (const PinRef& s : nl.net(out).sinks) {
      if (!is_timed_input(*nl.gate(s.gate).cell, s.pin)) continue;
      if (!in_queue[s.gate]) {
        in_queue[s.gate] = 1;
        queue.push_back(s.gate);
      }
    }
  }

  // Endpoints can change even when no level does (retargeting a DFF D pin
  // moves an endpoint without touching the DAG edges), so always rebuild.
  dag.endpoint_nets = collect_endpoint_nets(nl);
  if (changed.empty()) return changed;

  // Rebuild the derived arrays. num_levels may shrink as well as grow.
  dag.num_levels = 0;
  for (GateId g = 0; g < ng; ++g) {
    dag.num_levels = std::max(dag.num_levels, dag.gate_level[g] + 1);
  }
  dag.net_level.assign(nl.num_nets(), 0);
  for (GateId g = 0; g < ng; ++g) {
    const Gate& gate = nl.gate(g);
    const NetId out = gate.pin_nets[gate.cell->output_pin()];
    dag.net_level[out] = dag.gate_level[g] + 1;
  }
  // Re-bucket using the old order as the (deterministic) tie-break within a
  // level, then adopt the bucketed order as the topological order — any
  // level-ascending order is topological.
  dag.level_begin.assign(dag.num_levels + 1, 0);
  for (GateId g = 0; g < ng; ++g) ++dag.level_begin[dag.gate_level[g] + 1];
  for (std::uint32_t l = 1; l <= dag.num_levels; ++l) {
    dag.level_begin[l] += dag.level_begin[l - 1];
  }
  dag.level_order.resize(ng);
  std::vector<std::uint32_t> cursor(dag.level_begin.begin(),
                                    dag.level_begin.end() - 1);
  for (const GateId g : dag.topo_order) {
    dag.level_order[cursor[dag.gate_level[g]]++] = g;
  }
  dag.topo_order = dag.level_order;
  return changed;
}

}  // namespace xtalk::netlist
