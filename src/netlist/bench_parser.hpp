// ISCAS89 ".bench" netlist format reader/writer.
//
// The paper's experiments run on ISCAS89 sequential benchmarks; this parser
// accepts the standard format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = NAND(G0, G1)
//   G5  = DFF(G10)
//
// Supported functions: NOT, BUF/BUFF, AND, NAND, OR, NOR, XOR, XNOR, DFF.
// Gates wider than the library's 4-input maximum are decomposed into
// balanced trees of narrower gates (new nets get a "$t<n>" suffix).
// DFF clock pins are wired to a single implicit clock net named "CLK".
//
// Error handling: malformed lines are *accumulated* (optionally into an
// external util::DiagSink, with file/line context) and the parser recovers
// to the next line; at end-of-input a single util::DiagError carrying the
// first error is thrown. Resource limits (util::ParseLimits) bound what
// adversarial input can allocate and abort the parse via DiagError
// immediately. DiagError derives from std::runtime_error, so legacy
// catch sites keep working.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"
#include "util/diag.hpp"

namespace xtalk::netlist {

/// Parse a .bench netlist. Throws util::DiagError (a std::runtime_error)
/// with a line-numbered message on malformed input; with a `sink`, every
/// recovered error is also recorded there before the throw.
Netlist parse_bench(std::string_view text, const CellLibrary& library,
                    const util::ParseLimits& limits = {},
                    util::DiagSink* sink = nullptr);

/// Read and parse a .bench file from disk. An unopenable file throws
/// util::DiagError(kFileError) carrying the path in its context.
Netlist parse_bench_file(const std::string& path, const CellLibrary& library,
                         const util::ParseLimits& limits = {},
                         util::DiagSink* sink = nullptr);

/// Serialize a netlist back to .bench text. Multi-stage library cells keep
/// their bench-level function name (AND2_X1 -> AND); clock-tree buffer
/// gates (on clock nets) are emitted as BUF lines.
std::string write_bench(const Netlist& netlist);

}  // namespace xtalk::netlist
