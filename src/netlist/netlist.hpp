// Gate-level netlist.
//
// Nets and gates are stored in flat vectors and addressed by dense integer
// ids, which every downstream stage (placement, extraction, STA) uses as
// array indices. Cells are borrowed from a CellLibrary that must outlive
// the netlist.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.hpp"

namespace xtalk::netlist {

using NetId = std::uint32_t;
using GateId = std::uint32_t;
inline constexpr NetId kNoNet = 0xffffffffu;
inline constexpr GateId kNoGate = 0xffffffffu;

/// A (gate, pin) endpoint of a net.
struct PinRef {
  GateId gate = kNoGate;
  std::uint32_t pin = 0;

  bool operator==(const PinRef&) const = default;
};

/// What a net is used for; the router and the STA treat clock nets
/// specially (the clock tree is an aggressor like any other wire, but not a
/// data path).
enum class NetKind { kSignal, kClock };

struct Net {
  std::string name;
  NetKind kind = NetKind::kSignal;
  /// Driving pin; invalid gate id if driven by a primary input.
  PinRef driver;
  /// Sink pins (gate inputs). Primary-output connections are tracked in
  /// Netlist::primary_outputs().
  std::vector<PinRef> sinks;
  bool is_primary_input = false;
};

struct Gate {
  std::string name;
  const Cell* cell = nullptr;
  /// Net connected to each cell pin, parallel to cell->pins().
  std::vector<NetId> pin_nets;
};

/// A flat gate-level netlist with named primary inputs/outputs and an
/// optional clock net.
class Netlist {
 public:
  explicit Netlist(const CellLibrary& library) : library_(&library) {}

  const CellLibrary& library() const { return *library_; }

  // --- construction -----------------------------------------------------
  /// Create (or fetch) a net by name.
  NetId add_net(const std::string& name, NetKind kind = NetKind::kSignal);
  /// Create a gate instance; pin_nets must match the cell's pin count.
  GateId add_gate(const std::string& name, const Cell& cell,
                  std::vector<NetId> pin_nets);
  void mark_primary_input(NetId net);
  void mark_primary_output(NetId net);
  void set_clock_net(NetId net);
  /// Move a gate pin to a different net, updating sink/driver lists on both
  /// nets (used by clock-tree construction).
  void reconnect_pin(GateId gate, std::uint32_t pin, NetId new_net);
  /// Swap a gate's cell for a footprint-compatible one (same pin count,
  /// directions and sequential flag) — the ECO "resize" move. Connectivity
  /// is untouched; throws std::runtime_error on an incompatible cell.
  void replace_gate_cell(GateId gate, const Cell& cell);

  // --- access -------------------------------------------------------------
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  const Net& net(NetId id) const { return nets_[id]; }
  Net& net(NetId id) { return nets_[id]; }
  const Gate& gate(GateId id) const { return gates_[id]; }
  Gate& gate(GateId id) { return gates_[id]; }
  NetId find_net(const std::string& name) const;

  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const { return primary_outputs_; }
  NetId clock_net() const { return clock_net_; }

  /// All sequential (flip-flop) gates.
  std::vector<GateId> sequential_gates() const;

  /// Sum of input-pin capacitance attached to a net [F] (cell pins only, no
  /// wire capacitance).
  double net_pin_cap(NetId id) const;

  /// Total transistor count of the design.
  std::size_t transistor_count() const;

  /// Consistency check: every net has a driver (or is a primary input),
  /// every gate pin is connected, pin directions match net roles. Throws
  /// std::runtime_error with a description on violation.
  void validate() const;

 private:
  const CellLibrary* library_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  NetId clock_net_ = kNoNet;
};

}  // namespace xtalk::netlist
