// Clock buffer tree synthesis.
//
// The paper's experiment setup: "The gates are sized and there is a clock
// buffer tree added." We restructure the flat clock net into a balanced
// buffer tree with a bounded fanout per buffer; the tree's nets are routed
// and extracted like any signal wire, so clock wires both receive an
// insertion delay and act as crosstalk aggressors.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace xtalk::netlist {

struct ClockTreeOptions {
  std::size_t max_fanout = 16;       ///< sinks per buffer
  std::string leaf_cell = "CLKBUF_X8";
  std::string trunk_cell = "CLKBUF_X16";
};

struct ClockTreeStats {
  std::size_t num_buffers = 0;
  std::size_t num_levels = 0;
};

/// Build the tree in place. All flip-flop CK pins currently attached to
/// netlist.clock_net() are re-parented onto leaf buffers. No-op (zero
/// stats) if the design has no clock or no flip-flops.
ClockTreeStats build_clock_tree(Netlist& netlist,
                                const ClockTreeOptions& options = {});

}  // namespace xtalk::netlist
