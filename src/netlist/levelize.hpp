// Timing-DAG extraction and topological ordering (paper §4: "the circuit is
// translated into a directed acyclic graph ... The task is to find the
// longest path through the graph which is usually done by a
// breadth-first-search").
//
// Flip-flops break the cycle at their D pin: a DFF participates in the DAG
// only through its CK -> Q arc, so launch times through the clock tree fall
// out of the same traversal. Timing endpoints are DFF D pins and primary
// outputs.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace xtalk::netlist {

/// True if `pin` of `gate`'s cell starts a timing arc to the output
/// (all input pins of combinational cells; only CK for flip-flops).
bool is_timed_input(const Cell& cell, std::uint32_t pin);

/// The levelized timing DAG over gates.
struct LevelizedDag {
  /// Gates in topological order (every timed fanin precedes the gate).
  std::vector<GateId> topo_order;
  /// Logic level per gate (0 = fed only by primary inputs / launch points).
  std::vector<std::uint32_t> gate_level;
  /// Logic level per net (driver's level + 1; 0 for primary inputs).
  std::vector<std::uint32_t> net_level;
  /// Nets that are timing endpoints (connected to a DFF D pin or a primary
  /// output), deduplicated.
  std::vector<NetId> endpoint_nets;
  /// Maximum gate level + 1.
  std::uint32_t num_levels = 0;
  /// `topo_order` re-bucketed by level: gates of level L occupy
  /// level_order[level_begin[L] .. level_begin[L+1]), in topo_order-relative
  /// order within the bucket. All fanins of a level-L gate are outputs of
  /// levels < L, so the gates of one level are mutually independent — the
  /// unit of parallelism for the level-synchronous STA pass.
  std::vector<GateId> level_order;
  /// Bucket boundaries into level_order; size num_levels + 1.
  std::vector<std::uint32_t> level_begin;
};

/// Build the DAG. Throws std::runtime_error if a combinational cycle
/// exists (cycles through DFFs are fine).
LevelizedDag levelize(const Netlist& netlist);

/// Timing-endpoint nets (DFF D pins + primary outputs), net-id ascending.
/// Shared by levelize() and relevelize_affected() so both produce the same
/// endpoint ordering (StaResult::endpoints follows it).
std::vector<NetId> collect_endpoint_nets(const Netlist& netlist);

/// Incrementally repair `dag` after a connectivity edit (ECO sink
/// retargeting). `seed_gates` are the gates whose fanin set changed; levels
/// are re-relaxed through their fanout cones, the level buckets and
/// endpoint list are rebuilt, and the gates whose level actually changed
/// are returned (the caller uses them to grow the dirty set — a level
/// change can flip the coupling-classification snapshot of PR 1).
///
/// The resulting dag matches `levelize(netlist)` in every field except
/// possibly the within-level order of topo_order/level_order, which no
/// timing result depends on (gates of one level are mutually independent).
/// Throws std::runtime_error if the edit introduced a combinational cycle.
std::vector<GateId> relevelize_affected(LevelizedDag& dag, const Netlist& netlist,
                                        const std::vector<GateId>& seed_gates);

}  // namespace xtalk::netlist
