// Standard-cell library with transistor-level topology.
//
// The paper's delay calculation is transistor-level (§3), so every cell
// carries its CMOS structure, not just a delay table. A cell is a chain of
// complementary *stages*; each stage is described by its NMOS pull-down
// network as a series/parallel tree, the PMOS pull-up network being the
// exact dual. Multi-stage cells (BUF, AND, OR, XOR, DFF) keep gate-level
// cell counts identical to the benchmark netlists while remaining fully
// transistor-level underneath.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/technology.hpp"

namespace xtalk::netlist {

/// A node of a series/parallel transistor network. Leaves are devices
/// controlled by a stage input; internal nodes combine children in series
/// or parallel. The pull-up network is derived as the dual (series <->
/// parallel) with PMOS widths.
struct SpNode {
  enum class Kind { kDevice, kSeries, kParallel };

  Kind kind = Kind::kDevice;
  std::size_t input = 0;          ///< stage-input index (leaves only)
  std::vector<SpNode> children;   ///< internal nodes only

  static SpNode device(std::size_t input) {
    SpNode n;
    n.kind = Kind::kDevice;
    n.input = input;
    return n;
  }
  static SpNode series(std::vector<SpNode> kids) {
    SpNode n;
    n.kind = Kind::kSeries;
    n.children = std::move(kids);
    return n;
  }
  static SpNode parallel(std::vector<SpNode> kids) {
    SpNode n;
    n.kind = Kind::kParallel;
    n.children = std::move(kids);
    return n;
  }

  /// Number of device leaves in the tree.
  std::size_t device_count() const;
  /// Depth of the longest series chain through the tree (stack height).
  std::size_t stack_height() const;
};

/// Where a stage input comes from: a cell input pin or a previous stage's
/// output.
struct StageInput {
  enum class Source { kCellPin, kStage };
  Source source = Source::kCellPin;
  std::size_t index = 0;  ///< pin index or stage index

  static StageInput pin(std::size_t i) { return {Source::kCellPin, i}; }
  static StageInput stage(std::size_t i) { return {Source::kStage, i}; }
};

/// One complementary CMOS stage. Logically the output is the complement of
/// the pull-down condition: out = !f(inputs), with f given by `pulldown`.
struct Stage {
  std::vector<StageInput> inputs;  ///< stage input list
  SpNode pulldown;                 ///< NMOS network over input indices
  double wn = 0.0;                 ///< NMOS device width [m]
  double wp = 0.0;                 ///< PMOS device width [m]
};

/// Pin direction.
enum class PinDir { kInput, kOutput, kClock };

struct PinInfo {
  std::string name;
  PinDir dir = PinDir::kInput;
  double cap = 0.0;  ///< input pin capacitance [F] (0 for outputs)
};

/// Functional class, used by the parser / generator and for logic value
/// bookkeeping.
enum class CellFunc {
  kInv,
  kBuf,
  kNand,
  kNor,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kAoi21,
  kOai21,
  kDff,
};

/// An immutable library cell.
class Cell {
 public:
  Cell(std::string name, CellFunc func, std::vector<PinInfo> pins,
       std::vector<Stage> stages, bool sequential);

  const std::string& name() const { return name_; }
  CellFunc func() const { return func_; }
  bool is_sequential() const { return sequential_; }

  const std::vector<PinInfo>& pins() const { return pins_; }
  const std::vector<Stage>& stages() const { return stages_; }

  std::size_t num_inputs() const { return num_inputs_; }
  /// Index of the (single) output pin.
  std::size_t output_pin() const { return output_pin_; }
  /// Index of the clock pin; only valid for sequential cells.
  std::size_t clock_pin() const { return clock_pin_; }
  /// Pin index by name; throws std::out_of_range if absent.
  std::size_t pin_index(const std::string& pin_name) const;

  /// Capacitance contributed by the cell's own devices on the output net
  /// (drain junctions of the last stage) [F].
  double output_parasitic_cap() const { return output_cap_; }

  /// Total transistor count over all stages.
  std::size_t transistor_count() const;

  /// A copy of this cell with every device width scaled by `factor`, and
  /// the width-proportional capacitances (pin gate caps, output junction
  /// cap) scaled with it — the ECO "resize in place" move. The clone is
  /// not registered in any CellLibrary; the caller owns it. Throws
  /// std::invalid_argument for factor <= 0.
  Cell resized(double factor) const;

  // Library-construction hooks (capacitances are derived from the stage
  // topology after the pin list is fixed). Not for use outside
  // CellLibrary::build().
  void set_output_parasitic_cap(double cap) { output_cap_ = cap; }
  void add_pin_cap(std::size_t pin, double cap) { pins_[pin].cap += cap; }

 private:
  std::string name_;
  CellFunc func_;
  std::vector<PinInfo> pins_;
  std::vector<Stage> stages_;
  bool sequential_ = false;
  std::size_t num_inputs_ = 0;
  std::size_t output_pin_ = 0;
  std::size_t clock_pin_ = 0;
  double output_cap_ = 0.0;
};

/// The cell library for one technology. Cells are owned by the library and
/// referenced by pointer from netlists; the library must outlive them.
class CellLibrary {
 public:
  explicit CellLibrary(const device::Technology& tech);

  const device::Technology& tech() const { return *tech_; }

  /// Lookup by cell name (e.g. "NAND2_X1"); nullptr if absent.
  const Cell* find(const std::string& name) const;
  /// Lookup by cell name; throws std::out_of_range if absent.
  const Cell& get(const std::string& name) const;

  /// Pick a cell by function and fanin for the parser/generator
  /// (strength X1). Throws std::out_of_range for unsupported combinations.
  const Cell& by_func(CellFunc func, std::size_t fanin) const;

  std::vector<const Cell*> all_cells() const;

  /// The default library for the 0.5 um technology (built on first use).
  static const CellLibrary& half_micron();

 private:
  void add(Cell cell);
  void build();

  const device::Technology* tech_;
  std::map<std::string, std::unique_ptr<Cell>> cells_;
};

}  // namespace xtalk::netlist
