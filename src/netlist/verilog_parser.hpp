// Structural (gate-level) Verilog reader/writer.
//
// The ISCAS89 circuits — and most real designs this analyzer would
// consume — also circulate as gate-level Verilog. Supported subset: one
// module, `input`/`output`/`wire` declarations (comma lists, no buses),
// and cell instantiations with named connections:
//
//   module top (a, b, y);
//     input a, b;
//     output y;
//     wire w1;
//     NAND2_X1 u1 (.A(a), .B(b), .Y(w1));
//     DFF_X1   r1 (.D(w1), .CK(clk), .Q(y));
//   endmodule
//
// Cell names resolve against the CellLibrary. `// ...` and `/* ... */`
// comments are stripped. A net named "clk"/"CLK" connected to a DFF CK pin
// becomes the clock net.
// Error handling mirrors the bench parser: malformed statements are
// accumulated (with line/column context, optionally into an external
// util::DiagSink) and the parser recovers at the next ';'; at end-of-input
// a single util::DiagError carrying the first error is thrown.
// util::ParseLimits bounds token count, identifier length and netlist size
// against adversarial input.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.hpp"
#include "util/diag.hpp"

namespace xtalk::netlist {

/// Parse structural Verilog. Throws util::DiagError (a std::runtime_error)
/// with a line number on malformed input, unknown cells or unknown pins;
/// with a `sink`, every recovered error is also recorded there.
Netlist parse_verilog(std::string_view text, const CellLibrary& library,
                      const util::ParseLimits& limits = {},
                      util::DiagSink* sink = nullptr);

/// Serialize a netlist as structural Verilog (inverse of parse_verilog up
/// to formatting).
std::string write_verilog(const Netlist& netlist,
                          const std::string& module_name = "top");

}  // namespace xtalk::netlist
