// Deterministic socket fault injection for the analysis service.
//
// Two layers, mirroring the PR 3 solver injector's filtered-before-count
// discipline (every spec counts its *own* matching probe calls, scoped by a
// connection filter, so a schedule fires identically regardless of thread
// count or interleaving):
//
//   SocketFaultInjector + FaultSocket — an in-process wrapper around
//   util::Socket whose recv/send/connect paths probe the injector: short
//   reads/writes (1-byte deliveries), injected ECONNRESET/EPIPE at a
//   scheduled op, stalls, and connect refusals. A null injector costs one
//   pointer test, so production clients carry the hook for free.
//
//   ChaosProxy — an in-process TCP relay that sits between a real client
//   and a real server and applies a *seeded byte-offset fault schedule* per
//   proxied connection: torn frames (forward N bytes, then RST both sides —
//   N lands mid-header or mid-payload), stalls at byte offsets, 1-byte
//   chunked forwarding, and connect refusals. The schedule for connection k
//   is a pure function of (seed, k), so a single-client test replays
//   bit-identically, and the load bench gives each client thread its own
//   proxy so schedules stay reproducible across client counts.
//
// Everything here is deliberately kernel-real: a ChaosProxy cut delivers an
// actual RST to both endpoints, which is what the client retry layer and
// the server's eviction logic must survive in production.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/socket.hpp"

namespace xtalk::util {

enum class SocketFaultKind : std::uint8_t {
  kShortRead,       ///< clamp one recv to a single byte
  kShortWrite,      ///< clamp one send to a single byte
  kTearRead,        ///< fail a recv with injected ECONNRESET and poison the fd
  kTearWrite,       ///< fail a send with injected EPIPE and poison the fd
  kStallRead,       ///< delay a recv by stall_ms before proceeding
  kStallWrite,      ///< delay a send by stall_ms before proceeding
  kConnectRefused,  ///< fail a connect probe with injected ECONNREFUSED
};

const char* socket_fault_kind_name(SocketFaultKind kind);

/// Probe classes FaultSocket reports to the injector.
enum class SocketFaultOp : std::uint8_t { kRecv, kSend, kConnect };

struct SocketFaultSpec {
  SocketFaultKind kind = SocketFaultKind::kShortRead;
  /// Connection id filter (-1 matches probes from any connection). The
  /// caller labels sockets with arm(); the id takes the role the gate id
  /// plays in the solver injector.
  std::int64_t conn = -1;
  /// Matching probe calls to let pass before firing.
  std::uint64_t after = 0;
  /// Times to fire once triggered (default: every call after `after`, the
  /// sticky behaviour of the solver injector — a torn connection stays
  /// torn, a chunky link stays chunky).
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  /// Stall duration for the stall kinds.
  std::uint32_t stall_ms = 1;
};

struct SocketFireInfo {
  bool fire = false;
  bool first = false;  ///< first firing of the matching spec
  SocketFaultKind kind = SocketFaultKind::kShortRead;
  std::uint32_t stall_ms = 0;
};

/// Thread-safe; shared by any number of FaultSockets. Counting is per spec
/// and filtered first, exactly like util::FaultInjector.
class SocketFaultInjector {
 public:
  void add(SocketFaultSpec spec);
  /// Rewind all per-spec counters (keeps the specs).
  void reset();
  void clear();

  SocketFireInfo should_fire(SocketFaultOp op, std::int64_t conn);

  /// Total probe calls that were faulted (all specs).
  std::uint64_t fired() const;

 private:
  struct Armed {
    SocketFaultSpec spec;
    std::uint64_t seen = 0;
    std::uint64_t fired = 0;
  };

  static bool matches(SocketFaultKind kind, SocketFaultOp op);

  mutable std::mutex mutex_;
  std::vector<Armed> specs_;
};

/// Outcome of a deadline-bounded exact read.
enum class RecvOutcome : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< deadline expired with bytes still outstanding
  kClosed,   ///< orderly EOF mid-read
  kError,    ///< transport error (message in *error)
};

/// Owned socket with an optional fault-injection hook. With a null injector
/// every call forwards to util::Socket at the cost of one pointer test; an
/// armed socket probes the injector before each op. A fired tear poisons
/// the socket (subsequent ops keep failing with the injected error), which
/// models a genuinely dead peer rather than a one-shot glitch.
class FaultSocket {
 public:
  FaultSocket() = default;
  explicit FaultSocket(Socket sock) : sock_(std::move(sock)) {}

  FaultSocket(FaultSocket&&) = default;
  FaultSocket& operator=(FaultSocket&&) = default;

  /// Attach an injector; `conn` labels this socket for spec filtering.
  void arm(SocketFaultInjector* injector, std::int64_t conn = -1) {
    injector_ = injector;
    conn_ = conn;
  }

  Socket& raw() { return sock_; }
  int fd() const { return sock_.fd(); }
  bool valid() const { return sock_.valid() && broken_.empty(); }
  void close() { sock_.close(); }

  /// Socket::recv_some/send_some with injection (short ops, stalls, tears).
  std::ptrdiff_t recv_some(void* buf, std::size_t n, bool* would_block,
                           std::string* error = nullptr);
  std::ptrdiff_t send_some(const void* buf, std::size_t n, bool* would_block,
                           std::string* error = nullptr);

  /// Blocking whole-buffer send; throws DiagError(kFileError) on failure
  /// (injected or real).
  void send_all(const void* buf, std::size_t n);

  /// Read exactly `n` bytes within `timeout_ms` (0 = no deadline), polling
  /// before every read so a stalled peer cannot hang the caller. Partial
  /// progress does NOT extend the deadline: it bounds the whole call.
  RecvOutcome recv_exact_deadline(void* buf, std::size_t n, int timeout_ms,
                                  std::string* error = nullptr);

 private:
  SocketFireInfo probe(SocketFaultOp op);

  Socket sock_;
  SocketFaultInjector* injector_ = nullptr;
  std::int64_t conn_ = -1;
  std::string broken_;  ///< sticky injected-error text; empty = healthy
};

/// Connect to loopback TCP through a connect-refusal probe: when the
/// injector fires, throws DiagError(kFileError) with an injected
/// ECONNREFUSED message without touching the network.
FaultSocket fault_connect_tcp_loopback(std::uint16_t port,
                                       SocketFaultInjector* injector,
                                       std::int64_t conn = -1);

// ---------------------------------------------------------------------------
// ChaosProxy
// ---------------------------------------------------------------------------

struct ChaosProxyConfig {
  std::uint16_t upstream_port = 0;  ///< loopback TCP server to relay to
  /// Schedule seed; 0 = pure relay, no faults.
  std::uint64_t seed = 0;
  /// Stall duration when a scheduled stall fires.
  std::uint32_t stall_ms = 40;
  /// Upper bound on scheduled fault events per proxied connection.
  std::uint32_t max_events_per_conn = 4;
  /// Probability that a given connection draws any faults at all; the rest
  /// relay cleanly so acknowledged traffic always makes progress.
  double fault_rate = 0.75;
};

/// Point-in-time injection counters (all totals since start()).
struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t refusals = 0;
  std::uint64_t cuts = 0;
  std::uint64_t stalls = 0;
  std::uint64_t chunked_spans = 0;
  std::uint64_t bytes_relayed = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyConfig config) : config_(config) {}
  ~ChaosProxy() { stop(); }

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind an ephemeral loopback listener and start relaying.
  void start();
  /// Close the listener and every proxied connection; join all threads.
  /// Idempotent and guaranteed to return (relay loops poll with timeouts).
  void stop();

  std::uint16_t port() const { return listener_.port(); }
  ChaosProxyStats stats() const;

 private:
  struct Event;
  void accept_loop();
  void relay(Socket client, std::uint64_t conn_index);

  ChaosProxyConfig config_;
  Listener listener_;
  WakePipe wake_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex threads_mutex_;
  std::vector<std::thread> relay_threads_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> cuts_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> chunked_{0};
  std::atomic<std::uint64_t> bytes_relayed_{0};
};

}  // namespace xtalk::util
