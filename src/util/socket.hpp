// Thin RAII sockets for the analysis service: Unix-domain and loopback TCP
// listeners, blocking client connects, non-blocking accepted connections,
// and a self-pipe for waking a poll() loop from other threads.
//
// POSIX-only by design (the daemon targets Linux; the rest of the library
// stays platform-neutral). Errors are reported as util::DiagError with
// DiagCode::kFileError carrying errno text — the service layer maps them to
// protocol error responses or startup failures, it never aborts on a bad
// peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace xtalk::util {

/// Owned file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Release ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close();
  /// Abortive close: SO_LINGER{on, 0} then close, so a TCP peer sees RST
  /// instead of an orderly FIN. The chaos proxy uses this to model a peer
  /// dying mid-frame; harmless (plain close) on non-TCP fds.
  void close_abortive();

  /// poll(2) this fd for `events` (POLLIN/POLLOUT). Returns the revents
  /// mask, 0 on timeout. EINTR retries without extending the deadline
  /// beyond `timeout_ms` total; timeout_ms < 0 waits forever.
  short poll_wait(short events, int timeout_ms);

  /// O_NONBLOCK on/off. Throws DiagError(kFileError) on fcntl failure.
  void set_nonblocking(bool nonblocking);

  /// read(2)/write(2) with EINTR retry. Return the byte count; 0 from recv
  /// means orderly peer shutdown; -1 with would_block set means EAGAIN
  /// (only meaningful on non-blocking sockets); -1 otherwise is a hard
  /// error (errno text in *error when given).
  std::ptrdiff_t recv_some(void* buf, std::size_t n, bool* would_block,
                           std::string* error = nullptr);
  std::ptrdiff_t send_some(const void* buf, std::size_t n, bool* would_block,
                           std::string* error = nullptr);

  /// Blocking send of the whole buffer (client side). Throws
  /// DiagError(kFileError) on failure.
  void send_all(const void* buf, std::size_t n);
  /// Blocking receive of exactly `n` bytes. Throws DiagError(kFileError) on
  /// error or premature EOF.
  void recv_exact(void* buf, std::size_t n);

 private:
  int fd_ = -1;
};

/// Bound + listening socket. `unix_path` listeners unlink their path on
/// destruction (the daemon owns its socket file).
class Listener {
 public:
  /// Listen on a Unix-domain socket at `path` (unlinks a stale file first).
  static Listener unix_domain(const std::string& path, int backlog = 64);
  /// Listen on loopback TCP. `port` 0 picks an ephemeral port; the chosen
  /// port is readable via port().
  static Listener tcp_loopback(std::uint16_t port, int backlog = 64);

  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept
      : socket_(std::move(other.socket_)),
        unix_path_(std::move(other.unix_path_)),
        port_(other.port_) {
    other.unix_path_.clear();
  }
  Listener& operator=(Listener&& other) noexcept;

  int fd() const { return socket_.fd(); }
  bool valid() const { return socket_.valid(); }
  std::uint16_t port() const { return port_; }
  const std::string& unix_path() const { return unix_path_; }

  /// Accept one pending connection (non-blocking listener): an invalid
  /// Socket when none is pending. The accepted socket is set non-blocking.
  Socket accept_nonblocking();

  /// Stop accepting: close the socket (and unlink the unix path) now.
  void close();

 private:
  Socket socket_;
  std::string unix_path_;
  std::uint16_t port_ = 0;
};

/// Blocking client connect (throws DiagError(kFileError) on failure).
Socket connect_unix(const std::string& path);
Socket connect_tcp_loopback(std::uint16_t port);

/// Self-pipe: lets any thread wake a poll() loop blocked on read_fd().
/// notify() is async-signal-safe and idempotent; drain() consumes pending
/// wake bytes.
class WakePipe {
 public:
  WakePipe();
  int read_fd() const { return read_.fd(); }
  void notify();
  void drain();

 private:
  Socket read_;
  Socket write_;
};

}  // namespace xtalk::util
