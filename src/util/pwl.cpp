#include "util/pwl.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/diag.hpp"

namespace xtalk::util {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

// NaN/Inf guards on every constructing entry point: a non-finite waveform
// point would propagate silently through delays (every comparison against
// NaN is false, so merges and crossings just pick wrong branches). Rejecting
// at the boundary turns that into an attributable DiagError.

Pwl::Pwl(std::vector<PwlPoint> points) : points_(std::move(points)) {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    require_finite(points_[i].t, "Pwl point time");
    require_finite(points_[i].v, "Pwl point value");
    assert(i == 0 ||
           (points_[i].t > points_[i - 1].t && "PWL times must increase"));
  }
}

Pwl Pwl::constant(double value) {
  require_finite(value, "Pwl::constant value");
  Pwl w;
  w.points_.push_back({0.0, value});
  return w;
}

Pwl Pwl::ramp(double t0, double v0, double t1, double v1) {
  require_finite(t0, "Pwl::ramp t0");
  require_finite(v0, "Pwl::ramp v0");
  require_finite(t1, "Pwl::ramp t1");
  require_finite(v1, "Pwl::ramp v1");
  assert(t1 > t0);
  Pwl w;
  w.points_.push_back({t0, v0});
  w.points_.push_back({t1, v1});
  return w;
}

Pwl Pwl::step(double t, double v0, double v1, double rise) {
  assert(rise > 0.0);
  return ramp(t, v0, t + rise, v1);
}

void Pwl::append(double t, double v) {
  if (!(std::isfinite(t) && std::isfinite(v))) {
    require_finite(t, "Pwl::append time");
    require_finite(v, "Pwl::append value");
  }
  if (!points_.empty()) {
    assert(t > points_.back().t && "PWL times must increase");
    // Merge collinear middle points: if the previous two points and the new
    // one lie on one line, drop the middle one. The tolerance is relative
    // to the local voltage swing, not an absolute epsilon: an absolute
    // threshold merges away small-but-real features (the near-vertical
    // post-V_trig coupling-step segments ride on a large DC value with a
    // swing near the old 1e-12 cutoff) and shifts time_at_value crossings.
    // The first two points fix the waveform's start and are never merged.
    if (points_.size() >= 3) {
      const PwlPoint& a = points_[points_.size() - 2];
      const PwlPoint& b = points_.back();
      const double slope_ab = (b.v - a.v) / (b.t - a.t);
      const double predicted = b.v + slope_ab * (t - b.t);
      const double swing = std::abs(b.v - a.v) + std::abs(v - b.v);
      if (std::abs(predicted - v) <= 1e-9 * swing) {
        points_.back() = {t, v};
        return;
      }
    }
  }
  points_.push_back({t, v});
}

double Pwl::value_at(double t) const {
  assert(!points_.empty());
  if (!std::isfinite(t)) require_finite(t, "Pwl::value_at time");
  if (t <= points_.front().t) return points_.front().v;
  if (t >= points_.back().t) return points_.back().v;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double time, const PwlPoint& p) { return time < p.t; });
  const PwlPoint& hi = *it;
  const PwlPoint& lo = *(it - 1);
  const double alpha = (t - lo.t) / (hi.t - lo.t);
  return lo.v + alpha * (hi.v - lo.v);
}

double Pwl::time_at_value(double v, bool rising) const {
  assert(!points_.empty());
  if (!std::isfinite(v)) require_finite(v, "Pwl::time_at_value value");
  const double sign = rising ? 1.0 : -1.0;
  if (sign * (points_.front().v - v) >= 0.0) return -kInf;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const PwlPoint& lo = points_[i - 1];
    const PwlPoint& hi = points_[i];
    if (sign * (hi.v - v) >= 0.0) {
      const double dv = hi.v - lo.v;
      if (std::abs(dv) < 1e-300) return hi.t;
      const double alpha = (v - lo.v) / dv;
      return lo.t + alpha * (hi.t - lo.t);
    }
  }
  return kInf;
}

bool Pwl::is_monotone(bool rising, double tol) const {
  const double sign = rising ? 1.0 : -1.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (sign * (points_[i].v - points_[i - 1].v) < -tol) return false;
  }
  return true;
}

Pwl Pwl::shifted(double dt) const {
  if (!std::isfinite(dt)) require_finite(dt, "Pwl::shifted offset");
  Pwl w;
  w.points_.reserve(points_.size());
  for (const PwlPoint& p : points_) w.points_.push_back({p.t + dt, p.v});
  return w;
}

Pwl Pwl::clipped_from_value(double v, bool rising) const {
  const double t_cross = time_at_value(v, rising);
  Pwl w;
  if (t_cross == kInf) {
    // Never reaches v: degenerate constant at the final value.
    w.points_.push_back({points_.back().t, points_.back().v});
    return w;
  }
  if (t_cross == -kInf) return *this;  // already starts past v
  w.points_.push_back({t_cross, v});
  for (const PwlPoint& p : points_) {
    if (p.t > t_cross) w.append(p.t, p.v);
  }
  return w;
}

double Pwl::min_value() const {
  double m = kInf;
  for (const PwlPoint& p : points_) m = std::min(m, p.v);
  return m;
}

double Pwl::max_value() const {
  double m = -kInf;
  for (const PwlPoint& p : points_) m = std::max(m, p.v);
  return m;
}

std::string Pwl::to_string() const {
  std::ostringstream os;
  os << "pwl[";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i) os << ", ";
    os << "(" << points_[i].t << ", " << points_[i].v << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace xtalk::util
