// Deterministic fault injection for the solver fallback chain (test-only).
//
// A FaultInjector is armed with FaultSpecs ("force a Newton divergence on
// gate 12 after its 3rd solver call") and threaded through the analysis via
// DiagHandle::faults (StaOptions::fault_injector). Solver probe sites ask
// should_fire(); a null injector costs one pointer test. Determinism: each
// spec counts its *own* matching probe calls, and probes are scoped to a
// gate that is evaluated serially by exactly one worker thread, so firing
// does not depend on thread interleaving or thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace xtalk::util {

enum class FaultKind {
  kNewtonDiverge,   ///< force Newton iteration to report non-convergence
  kNanCurrent,      ///< poison the device-current evaluation with NaN
  kSingularMatrix,  ///< force the matrix factorization to report failure
};

const char* fault_kind_name(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kNewtonDiverge;
  /// Gate the fault is scoped to; -1 matches probes from any gate.
  std::int64_t gate = -1;
  /// Number of matching probe calls to let pass before firing.
  std::uint64_t after = 0;
  /// How many times to fire once triggered (default: every call after
  /// `after`). A sticky fault (the default) models a genuinely broken
  /// model-table region rather than a one-shot glitch, so retries at the
  /// same site keep failing and the chain has to escalate.
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
};

/// Result of a probe: whether to fault this call, and whether this is the
/// first firing of the matching spec (the probe site emits exactly one
/// kInjectedFault diagnostic per spec per run, on `first`).
struct FireInfo {
  bool fire = false;
  bool first = false;
};

class FaultInjector {
 public:
  void add(FaultSpec spec);
  /// Rewind all per-spec counters (keeps the specs). The engine calls this
  /// at the start of every run so repeated runs replay identically.
  void reset();
  void clear();

  /// Called from a solver probe site on behalf of `gate` (-1 when the call
  /// has no gate context, e.g. standalone transient simulation).
  FireInfo should_fire(FaultKind kind, std::int64_t gate);

  /// Total number of probe calls that were faulted (all specs).
  std::uint64_t fired() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t seen = 0;   ///< matching probe calls so far
    std::uint64_t fired = 0;  ///< times this spec has fired
  };

  mutable std::mutex mutex_;
  std::vector<Armed> specs_;
};

}  // namespace xtalk::util
