#include "util/diag.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

namespace xtalk::util {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kNewtonNonConvergence: return "newton-non-convergence";
    case DiagCode::kNonFiniteValue: return "non-finite-value";
    case DiagCode::kNonFiniteTableEntry: return "non-finite-table-entry";
    case DiagCode::kDampedRetry: return "damped-retry";
    case DiagCode::kStepHalving: return "step-halving";
    case DiagCode::kBisectionFallback: return "bisection-fallback";
    case DiagCode::kBoundSubstituted: return "bound-substituted";
    case DiagCode::kGateDegraded: return "gate-degraded";
    case DiagCode::kIntegrationStall: return "integration-stall";
    case DiagCode::kThresholdNotCrossed: return "threshold-not-crossed";
    case DiagCode::kDcNonConvergence: return "dc-non-convergence";
    case DiagCode::kTransientStepLimit: return "transient-step-limit";
    case DiagCode::kTransientHold: return "transient-hold";
    case DiagCode::kSingularMatrix: return "singular-matrix";
    case DiagCode::kInjectedFault: return "injected-fault";
    case DiagCode::kBudgetExhausted: return "budget-exhausted";
    case DiagCode::kParseError: return "parse-error";
    case DiagCode::kInputLimit: return "input-limit";
    case DiagCode::kFileError: return "file-error";
    case DiagCode::kTableRange: return "table-range";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* fault_policy_name(FaultPolicy policy) {
  switch (policy) {
    case FaultPolicy::kStrict: return "strict";
    case FaultPolicy::kDegrade: return "degrade";
  }
  return "unknown";
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream out;
  out << '[' << severity_name(d.severity) << ' ' << diag_code_name(d.code)
      << ']';
  if (d.ctx.gate >= 0) out << " gate " << d.ctx.gate;
  if (d.ctx.net >= 0) out << " net " << d.ctx.net;
  if (d.ctx.level >= 0) out << " level " << d.ctx.level;
  if (d.ctx.pass >= 0) out << " pass " << d.ctx.pass;
  if (!d.ctx.file.empty()) out << ' ' << d.ctx.file;
  if (d.ctx.line >= 0) out << " line " << d.ctx.line;
  if (d.ctx.column >= 0) out << " col " << d.ctx.column;
  if (!d.message.empty()) out << ": " << d.message;
  return out.str();
}

bool diagnostic_order(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.ctx.pass, a.ctx.level, a.ctx.gate, a.ctx.net, a.ctx.file,
                  a.ctx.line, a.ctx.column, a.code, a.severity, a.message) <
         std::tie(b.ctx.pass, b.ctx.level, b.ctx.gate, b.ctx.net, b.ctx.file,
                  b.ctx.line, b.ctx.column, b.code, b.severity, b.message);
}

bool DiagSink::report(Diagnostic d) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  entries_.push_back(std::move(d));
  return true;
}

std::size_t DiagSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t DiagSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<Diagnostic> DiagSink::slice(std::size_t from) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from >= entries_.size()) return {};
  return std::vector<Diagnostic>(entries_.begin() + static_cast<long>(from),
                                 entries_.end());
}

void DiagSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  dropped_ = 0;
}

std::size_t DiagReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

std::size_t DiagReport::count(DiagCode code) const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

Diagnostic ParseDiag::make(DiagCode code, Severity severity,
                           std::int64_t line, std::int64_t column,
                           std::string message) const {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.ctx.file = file_;
  d.ctx.line = line;
  d.ctx.column = column;
  d.message = std::move(message);
  return d;
}

bool ParseDiag::error(std::int64_t line, std::int64_t column,
                      std::string message) {
  Diagnostic d = make(DiagCode::kParseError, Severity::kError, line, column,
                      std::move(message));
  if (errors_ == 0) first_ = d;
  ++errors_;
  if (sink_ != nullptr) sink_->report(std::move(d));
  return errors_ < limits_.max_errors;
}

void ParseDiag::fatal(DiagCode code, std::int64_t line, std::int64_t column,
                      std::string message) {
  Diagnostic d =
      make(code, Severity::kError, line, column, std::move(message));
  if (sink_ != nullptr) sink_->report(d);
  throw DiagError(std::move(d));
}

void ParseDiag::finish() const {
  if (errors_ == 0) return;
  Diagnostic d = first_;
  if (errors_ > 1) {
    d.message += " (+" + std::to_string(errors_ - 1) + " more " +
                 (errors_ == 2 ? "error" : "errors") + ")";
  }
  throw DiagError(std::move(d));
}

void require_finite(double value, const char* what) {
  if (std::isfinite(value)) return;
  Diagnostic d;
  d.code = DiagCode::kNonFiniteValue;
  d.severity = Severity::kError;
  d.message = std::string(what) + " is not finite";
  throw DiagError(std::move(d));
}

}  // namespace xtalk::util
