#include "util/linear_solver.hpp"

#include <cassert>
#include <cmath>

namespace xtalk::util {

bool LuSolver::factorize(const Matrix& a) {
  assert(a.rows() == a.cols());
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = std::abs(lu_(r, k));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;  // singular
    if (pivot != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double factor = lu_(r, k) * inv;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
  return true;
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  assert(b.size() == n_);
  std::vector<double> x(n_);
  // Apply permutation and forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b) {
  LuSolver solver;
  if (!solver.factorize(a)) return {};
  return solver.solve(b);
}

}  // namespace xtalk::util
