// Binary wire format for the analysis service (src/service/).
//
// Frames on the socket are length-prefixed: a 4-byte little-endian payload
// length followed by that many payload bytes. Inside a payload every value
// is encoded explicitly (no struct memcpy, no padding, no host-endian
// reads), so the format is stable across compilers and platforms:
//
//   u8/u16/u32/u64   little-endian fixed-width integers
//   i32/i64          two's-complement, same widths
//   f64              the IEEE-754 bit pattern as u64 — doubles round-trip
//                    *bitwise*, which is what lets the service guarantee
//                    results identical to a local run down to the last ulp
//   str/bytes        u32 length + raw bytes (length capped by WireLimits)
//
// Decoding follows the recoverable-diagnostics style of util::ParseDiag:
// WireReader never throws and never reads out of bounds. The first
// malformed read sets a sticky error (message + byte offset), every later
// getter becomes a no-op returning false, and the caller turns the sticky
// error into a protocol-level error response instead of tearing down the
// process. Limits bound what a hostile peer can make the decoder allocate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xtalk::util {

/// Decoder resource limits (the wire-format analogue of ParseLimits). The
/// defaults are far above anything the protocol legitimately sends; a limit
/// hit is a malformed frame, not a resizable buffer.
struct WireLimits {
  std::size_t max_frame_bytes = 64u << 20;   ///< payload bytes per frame
  std::size_t max_string_bytes = 8u << 20;   ///< bytes of one str/bytes field
  std::size_t max_array_items = 4u << 20;    ///< items of one length-prefixed array
};

/// Append-only encoder. Storage grows geometrically; data() is the payload
/// (without the frame length prefix — framing belongs to the transport).
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern; NaNs round-trip payload-exact.
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void bytes(const void* data, std::size_t n);
  /// Array header: element count (decoder enforces max_array_items).
  void array(std::size_t n) { u32(static_cast<std::uint32_t>(n)); }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over one frame payload. All getters return false
/// (leaving the output untouched) once the sticky error is set; a frame is
/// well-formed iff every field decoded AND finish() confirms no trailing
/// bytes.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size,
             const WireLimits& limits = {})
      : data_(data), size_(size), limits_(limits) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf,
                      const WireLimits& limits = {})
      : WireReader(buf.data(), buf.size(), limits) {}

  bool u8(std::uint8_t* out);
  bool u16(std::uint16_t* out);
  bool u32(std::uint32_t* out);
  bool u64(std::uint64_t* out);
  bool i32(std::int32_t* out);
  bool i64(std::int64_t* out);
  bool f64(double* out);
  bool boolean(bool* out);
  bool str(std::string* out);
  /// Array header; fails when the count exceeds max_array_items or the
  /// remaining bytes could not possibly hold `min_item_bytes` per item
  /// (rejects "4M items" headers on a 10-byte payload before any loop).
  bool array(std::uint32_t* count, std::size_t min_item_bytes = 1);

  /// Enum helper: u8 that must be < `limit`.
  bool enum8(std::uint8_t* out, std::uint8_t limit);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::size_t error_offset() const { return error_at_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Final validation: true iff no error and the payload was consumed
  /// exactly (trailing bytes are a malformed frame).
  bool finish();

  /// Manually poison the reader (semantic validation by the caller, e.g. an
  /// unknown enum value that passed the range check).
  void fail(const std::string& message);

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  const std::uint8_t* data_;
  std::size_t size_;
  WireLimits limits_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
  std::size_t error_at_ = 0;
};

}  // namespace xtalk::util
