// Uniform-grid interpolation tables.
//
// The delay calculator follows the paper (§3, after TETA): transistor DC
// behaviour is sampled into tables once per technology and looked up with
// bilinear interpolation during waveform integration. The fine
// discretisation keeps Newton iteration well behaved ("Due to the fine
// discretization of the tables we do not get convergence problems").
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace xtalk::util {

/// 1-D table on a uniform grid with linear interpolation and clamped
/// extrapolation.
class Table1D {
 public:
  Table1D() = default;
  /// Sample f on [x0, x1] with n points (n >= 2).
  Table1D(double x0, double x1, std::size_t n,
          const std::function<double(double)>& f);

  double lookup(double x) const;
  /// Derivative of the interpolant (piecewise constant).
  double derivative(double x) const;

  double x0() const { return x0_; }
  double x1() const { return x1_; }
  std::size_t size() const { return values_.size(); }

 private:
  double x0_ = 0.0;
  double x1_ = 1.0;
  double inv_dx_ = 1.0;
  std::vector<double> values_;
};

/// 2-D table on a uniform grid with bilinear interpolation and clamped
/// extrapolation. Axis order: lookup(x, y) with x the slow axis.
class Table2D {
 public:
  Table2D() = default;
  /// Sample f on [x0,x1] x [y0,y1] with nx * ny points (each >= 2).
  Table2D(double x0, double x1, std::size_t nx, double y0, double y1,
          std::size_t ny, const std::function<double(double, double)>& f);

  double lookup(double x, double y) const;
  /// Partial derivatives of the bilinear interpolant.
  double d_dx(double x, double y) const;
  double d_dy(double x, double y) const;

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

 private:
  double at(std::size_t i, std::size_t j) const { return values_[i * ny_ + j]; }
  /// Clamp x into the grid and return (index, fraction).
  void locate_x(double x, std::size_t& i, double& fx) const;
  void locate_y(double y, std::size_t& j, double& fy) const;

  double x0_ = 0.0, x1_ = 1.0, y0_ = 0.0, y1_ = 1.0;
  double inv_dx_ = 1.0, inv_dy_ = 1.0;
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<double> values_;
};

}  // namespace xtalk::util
