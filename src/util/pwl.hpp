// Piecewise-linear waveforms.
//
// The STA engine propagates one worst-case waveform per net and transition
// direction (paper §4). Waveforms produced by the delay calculator are
// monotone (the coupling model discards the pre-drop glitch exactly so that
// propagated waveforms stay monotone, paper §2), which lets crossing-time
// queries use binary search.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xtalk::util {

/// One (time, value) sample of a piecewise-linear function.
struct PwlPoint {
  double t = 0.0;
  double v = 0.0;
};

/// A piecewise-linear function of time. Constant extrapolation outside the
/// sampled range. Time points are strictly increasing.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(std::vector<PwlPoint> points);

  /// A constant function.
  static Pwl constant(double value);
  /// A saturated ramp: value v0 until t0, linear to v1 at t1, then constant.
  static Pwl ramp(double t0, double v0, double t1, double v1);
  /// A one-segment step approximated by a ramp of width `rise`.
  static Pwl step(double t, double v0, double v1, double rise);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<PwlPoint>& points() const { return points_; }
  const PwlPoint& front() const { return points_.front(); }
  const PwlPoint& back() const { return points_.back(); }

  /// Append a sample; t must be strictly greater than the last time.
  /// Collinear middle points are merged to keep waveforms compact.
  void append(double t, double v);

  /// Value at time t (constant extrapolation).
  double value_at(double t) const;

  /// Earliest time at which the function reaches `v`, for a function that is
  /// monotone in the direction implied by rising. Returns negative infinity
  /// if the waveform starts beyond `v`, positive infinity if it never
  /// reaches it.
  double time_at_value(double v, bool rising) const;

  /// True if the samples are non-decreasing (rising) within `tol`.
  bool is_monotone(bool rising, double tol = 1e-12) const;

  /// Shift the whole waveform in time.
  Pwl shifted(double dt) const;

  /// Clip to the sub-waveform starting at the first crossing of `v`
  /// (direction `rising`); the result's first point is exactly (t_cross, v).
  /// Used to implement the paper's "waveforms start with the value of Vth".
  Pwl clipped_from_value(double v, bool rising) const;

  /// Minimum / maximum sampled value.
  double min_value() const;
  double max_value() const;

  /// Human-readable dump (for logs and debugging).
  std::string to_string() const;

 private:
  std::vector<PwlPoint> points_;
};

}  // namespace xtalk::util
