// Deterministic random number generation for circuit synthesis.
//
// We deliberately avoid std::mt19937 seeding subtleties and libc rand():
// every generated benchmark circuit must be bit-identical across platforms
// and standard-library versions, because the experiment tables are keyed by
// seed. xoshiro256** is small, fast and has a published reference
// implementation whose output is platform independent.
#pragma once

#include <cstdint>

namespace xtalk::util {

/// xoshiro256** pseudo random generator (Blackman & Vigna).
/// Deterministic across platforms; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -n % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace xtalk::util
