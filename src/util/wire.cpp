#include "util/wire.hpp"

#include <cstring>

namespace xtalk::util {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const void* data, std::size_t n) {
  u32(static_cast<std::uint32_t>(n));
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

bool WireReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_) return false;
  if (size_ - pos_ < n) {
    ok_ = false;
    error_at_ = pos_;
    error_ = "truncated frame: need " + std::to_string(n) + " bytes at offset " +
             std::to_string(pos_) + ", have " + std::to_string(size_ - pos_);
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t* out) {
  const std::uint8_t* p;
  if (!take(1, &p)) return false;
  *out = p[0];
  return true;
}

bool WireReader::u16(std::uint16_t* out) {
  const std::uint8_t* p;
  if (!take(2, &p)) return false;
  *out = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool WireReader::u32(std::uint32_t* out) {
  const std::uint8_t* p;
  if (!take(4, &p)) return false;
  *out = static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
  return true;
}

bool WireReader::u64(std::uint64_t* out) {
  const std::uint8_t* p;
  if (!take(8, &p)) return false;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  *out = v;
  return true;
}

bool WireReader::i32(std::int32_t* out) {
  std::uint32_t v;
  if (!u32(&v)) return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

bool WireReader::i64(std::int64_t* out) {
  std::uint64_t v;
  if (!u64(&v)) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool WireReader::f64(double* out) {
  std::uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool WireReader::boolean(bool* out) {
  std::uint8_t v;
  if (!u8(&v)) return false;
  if (v > 1) {
    fail("boolean field holds " + std::to_string(v));
    return false;
  }
  *out = v != 0;
  return true;
}

bool WireReader::str(std::string* out) {
  std::uint32_t n;
  if (!u32(&n)) return false;
  if (n > limits_.max_string_bytes) {
    fail("string length " + std::to_string(n) + " exceeds limit " +
         std::to_string(limits_.max_string_bytes));
    return false;
  }
  const std::uint8_t* p;
  if (!take(n, &p)) return false;
  out->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

bool WireReader::array(std::uint32_t* count, std::size_t min_item_bytes) {
  std::uint32_t n;
  if (!u32(&n)) return false;
  if (n > limits_.max_array_items) {
    fail("array count " + std::to_string(n) + " exceeds limit " +
         std::to_string(limits_.max_array_items));
    return false;
  }
  if (min_item_bytes > 0 && static_cast<std::size_t>(n) * min_item_bytes > remaining()) {
    fail("array count " + std::to_string(n) + " cannot fit in " +
         std::to_string(remaining()) + " remaining bytes");
    return false;
  }
  *count = n;
  return true;
}

bool WireReader::enum8(std::uint8_t* out, std::uint8_t limit) {
  std::uint8_t v;
  if (!u8(&v)) return false;
  if (v >= limit) {
    fail("enum value " + std::to_string(v) + " out of range [0, " +
         std::to_string(limit) + ")");
    return false;
  }
  *out = v;
  return true;
}

bool WireReader::finish() {
  if (!ok_) return false;
  if (pos_ != size_) {
    fail(std::to_string(size_ - pos_) + " trailing bytes after last field");
    return false;
  }
  return true;
}

void WireReader::fail(const std::string& message) {
  if (!ok_) return;  // first error sticks
  ok_ = false;
  error_at_ = pos_;
  error_ = message;
}

}  // namespace xtalk::util
