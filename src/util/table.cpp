#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "util/diag.hpp"

namespace xtalk::util {

namespace {

// A NaN/Inf table sample is a latent time bomb: std::clamp(NaN, ...) is
// NaN, and casting that to an index is undefined behaviour inside the
// hottest loop of the engine. Reject at construction (kNonFiniteTableEntry)
// and at every query entry point (require_finite) instead.
void require_finite_samples(const std::vector<double>& values,
                            const char* what) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isfinite(values[i])) continue;
    Diagnostic d;
    d.code = DiagCode::kNonFiniteTableEntry;
    d.severity = Severity::kError;
    d.message = std::string(what) + " sample " + std::to_string(i) +
                " is not finite";
    throw DiagError(std::move(d));
  }
}

}  // namespace

Table1D::Table1D(double x0, double x1, std::size_t n,
                 const std::function<double(double)>& f)
    : x0_(x0), x1_(x1) {
  assert(n >= 2 && x1 > x0);
  values_.resize(n);
  const double dx = (x1 - x0) / static_cast<double>(n - 1);
  inv_dx_ = 1.0 / dx;
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] = f(x0 + dx * static_cast<double>(i));
  }
  require_finite_samples(values_, "Table1D");
}

double Table1D::lookup(double x) const {
  assert(!values_.empty());
  if (!std::isfinite(x)) require_finite(x, "Table1D::lookup x");
  const double u = std::clamp((x - x0_) * inv_dx_, 0.0,
                              static_cast<double>(values_.size() - 1));
  const auto i = static_cast<std::size_t>(
      std::min(u, static_cast<double>(values_.size() - 2)));
  const double fx = u - static_cast<double>(i);
  return values_[i] * (1.0 - fx) + values_[i + 1] * fx;
}

double Table1D::derivative(double x) const {
  assert(values_.size() >= 2);
  if (!std::isfinite(x)) require_finite(x, "Table1D::derivative x");
  const double u = std::clamp((x - x0_) * inv_dx_, 0.0,
                              static_cast<double>(values_.size() - 1));
  const auto i = static_cast<std::size_t>(
      std::min(u, static_cast<double>(values_.size() - 2)));
  return (values_[i + 1] - values_[i]) * inv_dx_;
}

Table2D::Table2D(double x0, double x1, std::size_t nx, double y0, double y1,
                 std::size_t ny, const std::function<double(double, double)>& f)
    : x0_(x0), x1_(x1), y0_(y0), y1_(y1), nx_(nx), ny_(ny) {
  assert(nx >= 2 && ny >= 2 && x1 > x0 && y1 > y0);
  values_.resize(nx * ny);
  const double dx = (x1 - x0) / static_cast<double>(nx - 1);
  const double dy = (y1 - y0) / static_cast<double>(ny - 1);
  inv_dx_ = 1.0 / dx;
  inv_dy_ = 1.0 / dy;
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      values_[i * ny + j] =
          f(x0 + dx * static_cast<double>(i), y0 + dy * static_cast<double>(j));
    }
  }
  require_finite_samples(values_, "Table2D");
}

void Table2D::locate_x(double x, std::size_t& i, double& fx) const {
  const double u =
      std::clamp((x - x0_) * inv_dx_, 0.0, static_cast<double>(nx_ - 1));
  i = static_cast<std::size_t>(std::min(u, static_cast<double>(nx_ - 2)));
  fx = u - static_cast<double>(i);
}

void Table2D::locate_y(double y, std::size_t& j, double& fy) const {
  const double u =
      std::clamp((y - y0_) * inv_dy_, 0.0, static_cast<double>(ny_ - 1));
  j = static_cast<std::size_t>(std::min(u, static_cast<double>(ny_ - 2)));
  fy = u - static_cast<double>(j);
}

double Table2D::lookup(double x, double y) const {
  assert(nx_ >= 2 && ny_ >= 2);
  if (!(std::isfinite(x) && std::isfinite(y))) {
    require_finite(x, "Table2D::lookup x");
    require_finite(y, "Table2D::lookup y");
  }
  std::size_t i, j;
  double fx, fy;
  locate_x(x, i, fx);
  locate_y(y, j, fy);
  const double v00 = at(i, j), v01 = at(i, j + 1);
  const double v10 = at(i + 1, j), v11 = at(i + 1, j + 1);
  const double a = v00 * (1.0 - fy) + v01 * fy;
  const double b = v10 * (1.0 - fy) + v11 * fy;
  return a * (1.0 - fx) + b * fx;
}

double Table2D::d_dx(double x, double y) const {
  if (!(std::isfinite(x) && std::isfinite(y))) {
    require_finite(x, "Table2D::d_dx x");
    require_finite(y, "Table2D::d_dx y");
  }
  std::size_t i, j;
  double fx, fy;
  locate_x(x, i, fx);
  locate_y(y, j, fy);
  const double a = at(i + 1, j) - at(i, j);
  const double b = at(i + 1, j + 1) - at(i, j + 1);
  return (a * (1.0 - fy) + b * fy) * inv_dx_;
}

double Table2D::d_dy(double x, double y) const {
  if (!(std::isfinite(x) && std::isfinite(y))) {
    require_finite(x, "Table2D::d_dy x");
    require_finite(y, "Table2D::d_dy y");
  }
  std::size_t i, j;
  double fx, fy;
  locate_x(x, i, fx);
  locate_y(y, j, fy);
  const double a = at(i, j + 1) - at(i, j);
  const double b = at(i + 1, j + 1) - at(i + 1, j);
  return (a * (1.0 - fx) + b * fx) * inv_dy_;
}

}  // namespace xtalk::util
