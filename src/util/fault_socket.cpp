#include "util/fault_socket.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/diag.hpp"
#include "util/rng.hpp"

namespace xtalk::util {

namespace {

[[noreturn]] void throw_file_error(std::string message) {
  Diagnostic d;
  d.code = DiagCode::kFileError;
  d.severity = Severity::kError;
  d.message = std::move(message);
  throw DiagError(std::move(d));
}

void sleep_sliced(std::uint32_t total_ms, const std::atomic<bool>* stop) {
  // Sleep in 10 ms slices so an injected stall never outlives a shutdown
  // request by more than one slice.
  std::uint32_t left = total_ms;
  while (left > 0) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const std::uint32_t slice = std::min<std::uint32_t>(left, 10);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    left -= slice;
  }
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer: decorrelates (seed, conn_index) pairs so nearby
  // connection indices draw unrelated schedules.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* socket_fault_kind_name(SocketFaultKind kind) {
  switch (kind) {
    case SocketFaultKind::kShortRead:
      return "short-read";
    case SocketFaultKind::kShortWrite:
      return "short-write";
    case SocketFaultKind::kTearRead:
      return "tear-read";
    case SocketFaultKind::kTearWrite:
      return "tear-write";
    case SocketFaultKind::kStallRead:
      return "stall-read";
    case SocketFaultKind::kStallWrite:
      return "stall-write";
    case SocketFaultKind::kConnectRefused:
      return "connect-refused";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SocketFaultInjector
// ---------------------------------------------------------------------------

bool SocketFaultInjector::matches(SocketFaultKind kind, SocketFaultOp op) {
  switch (op) {
    case SocketFaultOp::kRecv:
      return kind == SocketFaultKind::kShortRead ||
             kind == SocketFaultKind::kTearRead ||
             kind == SocketFaultKind::kStallRead;
    case SocketFaultOp::kSend:
      return kind == SocketFaultKind::kShortWrite ||
             kind == SocketFaultKind::kTearWrite ||
             kind == SocketFaultKind::kStallWrite;
    case SocketFaultOp::kConnect:
      return kind == SocketFaultKind::kConnectRefused;
  }
  return false;
}

void SocketFaultInjector::add(SocketFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.push_back(Armed{spec, 0, 0});
}

void SocketFaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& a : specs_) {
    a.seen = 0;
    a.fired = 0;
  }
}

void SocketFaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
}

SocketFireInfo SocketFaultInjector::should_fire(SocketFaultOp op,
                                                std::int64_t conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  SocketFireInfo info;
  for (auto& a : specs_) {
    // Filter before counting: a spec only sees probes that match its kind's
    // op class and its connection filter, so the firing index is a property
    // of that connection's own op stream, independent of global interleaving.
    if (!matches(a.spec.kind, op)) continue;
    if (a.spec.conn >= 0 && a.spec.conn != conn) continue;
    const std::uint64_t call = a.seen++;
    if (call < a.spec.after) continue;
    if (a.fired >= a.spec.count) continue;
    info.fire = true;
    info.first = (a.fired == 0);
    info.kind = a.spec.kind;
    info.stall_ms = a.spec.stall_ms;
    ++a.fired;
    return info;  // first matching spec wins, like the solver injector
  }
  return info;
}

std::uint64_t SocketFaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& a : specs_) total += a.fired;
  return total;
}

// ---------------------------------------------------------------------------
// FaultSocket
// ---------------------------------------------------------------------------

SocketFireInfo FaultSocket::probe(SocketFaultOp op) {
  if (injector_ == nullptr) return SocketFireInfo{};
  return injector_->should_fire(op, conn_);
}

std::ptrdiff_t FaultSocket::recv_some(void* buf, std::size_t n,
                                      bool* would_block, std::string* error) {
  *would_block = false;
  if (!broken_.empty()) {
    if (error != nullptr) *error = broken_;
    return -1;
  }
  std::size_t limit = n;
  const SocketFireInfo f = probe(SocketFaultOp::kRecv);
  if (f.fire) {
    switch (f.kind) {
      case SocketFaultKind::kShortRead:
        limit = std::min<std::size_t>(limit, 1);
        break;
      case SocketFaultKind::kTearRead:
        broken_ = "read: injected connection reset by peer";
        sock_.close();
        if (error != nullptr) *error = broken_;
        return -1;
      case SocketFaultKind::kStallRead:
        sleep_sliced(f.stall_ms, nullptr);
        break;
      default:
        break;
    }
  }
  return sock_.recv_some(buf, limit, would_block, error);
}

std::ptrdiff_t FaultSocket::send_some(const void* buf, std::size_t n,
                                      bool* would_block, std::string* error) {
  *would_block = false;
  if (!broken_.empty()) {
    if (error != nullptr) *error = broken_;
    return -1;
  }
  std::size_t limit = n;
  const SocketFireInfo f = probe(SocketFaultOp::kSend);
  if (f.fire) {
    switch (f.kind) {
      case SocketFaultKind::kShortWrite:
        limit = std::min<std::size_t>(limit, 1);
        break;
      case SocketFaultKind::kTearWrite:
        broken_ = "send: injected broken pipe";
        sock_.close_abortive();
        if (error != nullptr) *error = broken_;
        return -1;
      case SocketFaultKind::kStallWrite:
        sleep_sliced(f.stall_ms, nullptr);
        break;
      default:
        break;
    }
  }
  return sock_.send_some(buf, limit, would_block, error);
}

void FaultSocket::send_all(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    bool would_block = false;
    std::string error;
    const std::ptrdiff_t put = send_some(p, n, &would_block, &error);
    if (put < 0) {
      if (would_block) continue;
      throw_file_error(std::move(error));
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
}

RecvOutcome FaultSocket::recv_exact_deadline(void* buf, std::size_t n,
                                             int timeout_ms,
                                             std::string* error) {
  auto* p = static_cast<std::uint8_t*>(buf);
  const bool bounded = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  while (n > 0) {
    if (!broken_.empty()) {
      if (error != nullptr) *error = broken_;
      return RecvOutcome::kError;
    }
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return RecvOutcome::kTimeout;
      // Poll before reading so a peer that stops sending mid-frame cannot
      // park us in a blocking read past the deadline.
      short revents = 0;
      try {
        revents = sock_.poll_wait(POLLIN, static_cast<int>(left));
      } catch (const DiagError& e) {
        if (error != nullptr) *error = e.diagnostic().message;
        return RecvOutcome::kError;
      }
      if (revents == 0) return RecvOutcome::kTimeout;
    }
    bool would_block = false;
    std::string err;
    const std::ptrdiff_t got = recv_some(p, n, &would_block, &err);
    if (got == 0) {
      if (error != nullptr) {
        *error = "connection closed mid-frame (" + std::to_string(n) +
                 " bytes outstanding)";
      }
      return RecvOutcome::kClosed;
    }
    if (got < 0) {
      if (would_block) continue;  // raced with another reader or spurious wake
      if (error != nullptr) *error = std::move(err);
      return RecvOutcome::kError;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return RecvOutcome::kOk;
}

FaultSocket fault_connect_tcp_loopback(std::uint16_t port,
                                       SocketFaultInjector* injector,
                                       std::int64_t conn) {
  if (injector != nullptr) {
    const SocketFireInfo f =
        injector->should_fire(SocketFaultOp::kConnect, conn);
    if (f.fire) {
      throw_file_error("connect(127.0.0.1:" + std::to_string(port) +
                       "): injected connection refused");
    }
  }
  FaultSocket fs(connect_tcp_loopback(port));
  fs.arm(injector, conn);
  return fs;
}

// ---------------------------------------------------------------------------
// ChaosProxy
// ---------------------------------------------------------------------------

// One scheduled fault in a proxied connection's byte stream. Offsets count
// bytes forwarded in that direction, so a cut at offset 2 of a response
// tears the 4-byte frame header and a larger offset tears the payload —
// the proxy never parses frames, faults land wherever the offset falls.
struct ChaosProxy::Event {
  enum class Type : std::uint8_t { kCut, kStall, kChunk };
  Type type = Type::kCut;
  int dir = 0;  ///< 0: client→server, 1: server→client
  std::uint64_t offset = 0;
  std::uint32_t span = 0;  ///< chunked-forwarding length in bytes
};

void ChaosProxy::start() {
  listener_ = Listener::tcp_loopback(0);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void ChaosProxy::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  wake_.notify();
  // Join the accept thread before touching the listener: accept_loop polls
  // the listener fd, so closing it here would race with that read.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::thread> relays;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    relays.swap(relay_threads_);
  }
  for (auto& t : relays) {
    if (t.joinable()) t.join();
  }
  started_ = false;
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.refusals = refusals_.load(std::memory_order_relaxed);
  s.cuts = cuts_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.chunked_spans = chunked_.load(std::memory_order_relaxed);
  s.bytes_relayed = bytes_relayed_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2];
    fds[0] = {listener_.fd(), POLLIN, 0};
    fds[1] = {wake_.read_fd(), POLLIN, 0};
    const int rc = ::poll(fds, 2, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    wake_.drain();
    if (stopping_.load(std::memory_order_relaxed)) return;
    for (;;) {
      Socket client = listener_.accept_nonblocking();
      if (!client.valid()) break;
      const std::uint64_t index =
          connections_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(threads_mutex_);
      relay_threads_.emplace_back(
          [this, c = std::move(client), index]() mutable {
            relay(std::move(c), index);
          });
    }
  }
}

void ChaosProxy::relay(Socket client, std::uint64_t conn_index) {
  // The schedule is a pure function of (seed, conn_index): single-client
  // tests see connection k draw the same faults on every run, and the load
  // bench keeps determinism across client counts by giving each client
  // thread its own proxy (so accept order inside one proxy is serial).
  Rng rng(config_.seed ^ mix64(conn_index + 1));
  std::vector<Event> schedule[2];
  bool refuse = false;
  if (config_.seed != 0 && rng.next_bool(config_.fault_rate)) {
    if (rng.next_bool(0.12)) {
      refuse = true;
    } else {
      const std::uint32_t n_events =
          1 + static_cast<std::uint32_t>(
                  rng.next_below(std::max<std::uint32_t>(
                      config_.max_events_per_conn, 1)));
      for (std::uint32_t i = 0; i < n_events; ++i) {
        Event ev;
        const double p = rng.next_double();
        ev.type = p < 0.40   ? Event::Type::kCut
                  : p < 0.65 ? Event::Type::kStall
                             : Event::Type::kChunk;
        ev.dir = rng.next_bool(0.5) ? 0 : 1;
        // Frame headers are 4 bytes and typical frames are tens to a few
        // thousand bytes, so this range tears mid-header, mid-payload and
        // between frames with useful frequency.
        ev.offset = rng.next_below(2000);
        ev.span = 8 + static_cast<std::uint32_t>(rng.next_below(56));
        schedule[ev.dir].push_back(ev);
      }
      for (auto& dir_events : schedule) {
        std::sort(dir_events.begin(), dir_events.end(),
                  [](const Event& a, const Event& b) {
                    return a.offset < b.offset;
                  });
      }
    }
  }

  if (refuse) {
    // Modeled refusal: accept then RST before relaying a byte, so the
    // client's first read/write on an apparently-good connect fails.
    refusals_.fetch_add(1, std::memory_order_relaxed);
    client.close_abortive();
    return;
  }

  Socket upstream;
  try {
    upstream = connect_tcp_loopback(config_.upstream_port);
  } catch (const DiagError&) {
    client.close_abortive();
    return;
  }
  upstream.set_nonblocking(true);

  Socket* socks[2] = {&client, &upstream};  // index = source of direction d
  std::uint64_t forwarded[2] = {0, 0};
  std::size_t next_event[2] = {0, 0};
  std::uint64_t chunk_left[2] = {0, 0};
  bool open[2] = {true, true};

  auto cut_both = [&] {
    cuts_.fetch_add(1, std::memory_order_relaxed);
    client.close_abortive();
    upstream.close_abortive();
  };

  // Blocking-ish forward of `n` bytes from buf to dst (poll + retry) so a
  // momentarily-full socket buffer doesn't drop relay bytes.
  auto forward = [&](Socket& dst, const std::uint8_t* buf,
                     std::size_t n) -> bool {
    while (n > 0) {
      if (stopping_.load(std::memory_order_relaxed)) return false;
      bool would_block = false;
      std::string error;
      const std::ptrdiff_t put = dst.send_some(buf, n, &would_block, &error);
      if (put < 0) {
        if (would_block) {
          try {
            dst.poll_wait(POLLOUT, 50);
          } catch (const DiagError&) {
            return false;
          }
          continue;
        }
        return false;
      }
      buf += put;
      n -= static_cast<std::size_t>(put);
    }
    return true;
  };

  std::uint8_t buf[4096];
  while (!stopping_.load(std::memory_order_relaxed) && (open[0] || open[1])) {
    pollfd fds[2];
    fds[0] = {open[0] ? client.fd() : -1, POLLIN, 0};
    fds[1] = {open[1] ? upstream.fd() : -1, POLLIN, 0};
    const int rc = ::poll(fds, 2, 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    for (int d = 0; d < 2; ++d) {
      if (!open[d] || (fds[d].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      // Fire every due event before moving bytes, then bound the read so we
      // cannot overshoot the next scheduled offset.
      std::size_t limit = sizeof(buf);
      auto& events = schedule[d];
      for (;;) {
        if (next_event[d] < events.size() &&
            events[next_event[d]].offset <= forwarded[d]) {
          const Event& ev = events[next_event[d]++];
          if (ev.type == Event::Type::kCut) {
            cut_both();
            return;
          }
          if (ev.type == Event::Type::kStall) {
            stalls_.fetch_add(1, std::memory_order_relaxed);
            sleep_sliced(config_.stall_ms, &stopping_);
          } else {
            chunked_.fetch_add(1, std::memory_order_relaxed);
            chunk_left[d] += ev.span;
          }
          continue;
        }
        break;
      }
      if (next_event[d] < events.size()) {
        limit = std::min<std::size_t>(
            limit,
            static_cast<std::size_t>(events[next_event[d]].offset -
                                     forwarded[d]));
      }
      if (chunk_left[d] > 0) limit = 1;

      bool would_block = false;
      std::string error;
      const std::ptrdiff_t got =
          socks[d]->recv_some(buf, limit, &would_block, &error);
      if (got < 0 && would_block) continue;
      if (got <= 0) {
        // Source half is done (EOF or error): propagate the shutdown to the
        // other side so the peer's reads terminate, keep relaying the
        // opposite direction.
        open[d] = false;
        ::shutdown(socks[1 - d]->fd(), SHUT_WR);
        continue;
      }
      if (!forward(*socks[1 - d], buf, static_cast<std::size_t>(got))) {
        open[d] = false;
        continue;
      }
      forwarded[d] += static_cast<std::uint64_t>(got);
      bytes_relayed_.fetch_add(static_cast<std::uint64_t>(got),
                               std::memory_order_relaxed);
      if (chunk_left[d] > 0) --chunk_left[d];
    }
  }
}

}  // namespace xtalk::util
