// Structured diagnostics for the fault-tolerant analysis pipeline.
//
// Production STA cannot assume clean inputs: a non-converged Newton step, a
// NaN escaping a table, a singular Jacobian must all surface as *recorded,
// attributable events* — never a silent wrong number, never (in degrade
// mode) an aborted run. Every recovery step of the solver fallback chain
// (delaycalc/waveform_calc.cpp, sim/transient.cpp) and every per-gate
// degradation of the STA engine reports here.
//
// The pieces:
//   Diagnostic  — one error-coded, severity-ranked event with analysis
//                 context (gate, net, level, pass).
//   DiagSink    — bounded, thread-safe collector; the engine owns one and
//                 threads a handle through the delay calculators.
//   DiagHandle  — the per-gate capability passed down the call chain: sink +
//                 fault-injection hook + context + fault policy.
//   DiagError   — exception carrying a Diagnostic (strict-policy failures
//                 and unrecoverable solver faults).
//   FaultPolicy — strict (first failure throws) vs degrade (fallback chain
//                 substitutes a conservative bound and the run completes).
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace xtalk::util {

class FaultInjector;  // util/fault_injection.hpp

/// Stable error codes. Append only — bench JSON reports and tests key on
/// the names.
enum class DiagCode {
  kNewtonNonConvergence,  ///< Newton exhausted max iterations (was silent)
  kNonFiniteValue,        ///< NaN/Inf escaped into or out of a computation
  kNonFiniteTableEntry,   ///< interpolation table built with NaN/Inf samples
  kDampedRetry,           ///< fallback chain: damped Newton retry engaged
  kStepHalving,           ///< fallback chain: time step halved after failure
  kBisectionFallback,     ///< fallback chain: bisection on the table model
  kBoundSubstituted,      ///< last resort: conservative NLDM-derived bound
  kGateDegraded,          ///< per-gate isolation: whole gate replaced by bound
  kIntegrationStall,      ///< waveform integration hit max_steps
  kThresholdNotCrossed,   ///< output waveform never reached the model Vth
  kDcNonConvergence,      ///< transient DC operating point did not converge
  kTransientStepLimit,    ///< transient Newton failed at the minimum step
  kTransientHold,         ///< degrade: transient held state past a bad step
  kSingularMatrix,        ///< Jacobian factorization failed
  kInjectedFault,         ///< a test fault-injection site fired
  kBudgetExhausted,       ///< run governor truncated or aborted the run
  kParseError,            ///< malformed input line/statement (recovered)
  kInputLimit,            ///< input exceeded a parser resource limit
  kFileError,             ///< file could not be opened/read
  kTableRange,            ///< analysis voltage exceeds the device-table grid
};

enum class Severity {
  kInfo,     ///< a fallback engaged and fully recovered
  kWarning,  ///< result degraded to a conservative bound
  kError,    ///< a whole gate/step was replaced or abandoned
};

/// Failure policy of an analysis run (StaOptions::fault_policy).
enum class FaultPolicy {
  kStrict,   ///< first failure throws DiagError (classic fail-fast)
  kDegrade,  ///< fallback chain + diagnostic; run completes conservatively
};

const char* diag_code_name(DiagCode code);
const char* severity_name(Severity severity);
const char* fault_policy_name(FaultPolicy policy);

/// Analysis context a diagnostic is attributed to. -1 = not applicable.
/// Parser diagnostics fill the source-location fields instead of the
/// analysis ones; an empty `file` means no file context.
struct DiagContext {
  std::int64_t gate = -1;  ///< netlist::GateId of the gate being evaluated
  std::int64_t net = -1;   ///< output net of that gate
  int level = -1;          ///< topological level
  int pass = -1;           ///< STA pass index
  std::string file;        ///< source file (parser/front-end diagnostics)
  std::int64_t line = -1;  ///< 1-based source line
  std::int64_t column = -1;///< 1-based source column
};

struct Diagnostic {
  DiagCode code = DiagCode::kNewtonNonConvergence;
  Severity severity = Severity::kInfo;
  DiagContext ctx;
  std::string message;
};

/// One-line rendering: "[warning bisection-fallback] gate 12 net 7 pass 0:
/// message" — parser diagnostics render their source location instead:
/// "[error parse-error] file.bench line 2 col 7: message".
std::string format_diagnostic(const Diagnostic& d);

/// Resource limits of the text front-ends (bench/verilog/SPEF parsers).
/// They bound what adversarial input can make the parser allocate; the
/// defaults are far above any legitimate netlist of this code base's
/// scale. A limit hit is reported as kInputLimit and aborts the parse.
struct ParseLimits {
  std::size_t max_line_length = 1u << 16;  ///< bytes per logical line
  std::size_t max_tokens = 8u << 20;       ///< tokens per file
  std::size_t max_errors = 64;   ///< recovered errors before giving up
  std::size_t max_nets = 2u << 20;         ///< distinct nets created
  std::size_t max_instances = 2u << 20;    ///< gates/instances created
  std::size_t max_gate_args = 4096;        ///< fanins of one parsed gate
};

/// Deterministic ordering for reports: (pass, level, gate, net, code,
/// severity, message). Thread scheduling can permute sink arrival order;
/// sorting restores a stable view.
bool diagnostic_order(const Diagnostic& a, const Diagnostic& b);

class DiagSink;

/// Error accumulator of the text front-ends (bench/Verilog/SPEF). The
/// parsers report every malformed statement here and recover to the next
/// one instead of throwing on first contact; at end-of-input finish()
/// raises a single DiagError carrying the *first* error (so existing
/// "throws with line number" contracts hold) annotated with the total
/// count. Resource-limit hits and unopenable files are unrecoverable and
/// throw immediately via fatal(). Every record is mirrored into the
/// optional external sink so callers see the full list, not just the
/// first.
class ParseDiag {
 public:
  ParseDiag(std::string file, const ParseLimits& limits,
            DiagSink* sink = nullptr)
      : file_(std::move(file)), limits_(limits), sink_(sink) {}

  const ParseLimits& limits() const { return limits_; }
  std::size_t error_count() const { return errors_; }
  bool ok() const { return errors_ == 0; }

  /// Record a recoverable parse error (kParseError). Returns true while
  /// the caller may keep recovering, false once max_errors is reached —
  /// the caller should then stop consuming input and call finish().
  bool error(std::int64_t line, std::int64_t column, std::string message);

  /// Record and immediately throw DiagError: resource-limit hits
  /// (kInputLimit) and file-system failures (kFileError) that recovery
  /// cannot get past.
  [[noreturn]] void fatal(DiagCode code, std::int64_t line,
                          std::int64_t column, std::string message);

  /// Throw DiagError for the first recorded error; no-op on a clean parse.
  void finish() const;

 private:
  Diagnostic make(DiagCode code, Severity severity, std::int64_t line,
                  std::int64_t column, std::string message) const;

  std::string file_;
  ParseLimits limits_;
  DiagSink* sink_;
  std::size_t errors_ = 0;
  Diagnostic first_;
};

/// Bounded, thread-safe diagnostic collector. Reports beyond the capacity
/// are counted, not stored (the run stays O(1) in memory under a diagnostic
/// storm), and the drop is itself visible via dropped().
class DiagSink {
 public:
  explicit DiagSink(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Record a diagnostic. Returns false if it was dropped (sink full).
  bool report(Diagnostic d);

  std::size_t size() const;
  std::size_t dropped() const;
  /// Copy of entries [from, size()), in arrival order.
  std::vector<Diagnostic> slice(std::size_t from) const;
  std::vector<Diagnostic> snapshot() const { return slice(0); }
  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<Diagnostic> entries_;
};

/// Final per-run diagnostic report (StaResult::diagnostics): entries in the
/// deterministic diagnostic_order, plus the drop counter.
struct DiagReport {
  std::vector<Diagnostic> entries;
  std::size_t dropped = 0;

  std::size_t count(Severity severity) const;
  std::size_t count(DiagCode code) const;
  bool empty() const { return entries.empty() && dropped == 0; }
};

/// Exception carrying the diagnostic that caused it. Thrown by strict-policy
/// failures and by unrecoverable solver faults; the STA engine's degrade
/// path catches it and substitutes a conservative bound instead.
class DiagError : public std::runtime_error {
 public:
  explicit DiagError(Diagnostic diag)
      : std::runtime_error(format_diagnostic(diag)), diag_(std::move(diag)) {}

  const Diagnostic& diagnostic() const { return diag_; }

 private:
  Diagnostic diag_;
};

/// The capability handed down the delay-calculation call chain: where to
/// report, which faults to inject (test-only; null in production), under
/// which policy, attributed to which gate. Copyable, borrowed pointers.
struct DiagHandle {
  DiagSink* sink = nullptr;
  FaultInjector* faults = nullptr;
  FaultPolicy policy = FaultPolicy::kDegrade;
  DiagContext ctx;

  /// Report with this handle's context filled in. Safe on a null sink.
  void report(DiagCode code, Severity severity, std::string message) const {
    if (sink == nullptr) return;
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.ctx = ctx;
    d.message = std::move(message);
    sink->report(std::move(d));
  }

  bool degrade() const { return policy == FaultPolicy::kDegrade; }

  /// Build the diagnostic for a throw site (context attached).
  Diagnostic make(DiagCode code, Severity severity, std::string message) const {
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.ctx = ctx;
    d.message = std::move(message);
    return d;
  }
};

/// Guard helper for the NaN/Inf entry-point checks of util/pwl.cpp and
/// util/table.cpp: throws DiagError(kNonFiniteValue) when `value` is not
/// finite. `what` names the rejected quantity.
void require_finite(double value, const char* what);

}  // namespace xtalk::util
