#include "util/persist.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>

#include "util/wire.hpp"

namespace xtalk::util {

namespace {

constexpr std::array<char, 4> kSnapMagic = {'X', 'T', 'S', 'N'};
constexpr std::array<char, 4> kWalMagic = {'X', 'T', 'W', 'L'};
constexpr std::uint16_t kSnapFormatVersion = 1;
constexpr std::uint16_t kWalFormatVersion = 1;
constexpr std::size_t kSnapHeaderBytes = 4 + 2 + 2 + 2 + 4 + 4;
constexpr std::size_t kWalHeaderBytes = 4 + 2 + 2;
constexpr std::size_t kWalRecordHeaderBytes = 4 + 2 + 2 + 4;
// A single record is bounded so a flipped length byte cannot make replay
// "validate" gigabytes of garbage against a lucky CRC.
constexpr std::uint32_t kMaxWalRecordBytes = 64u << 20;

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// fsync a file's containing directory so the rename itself is durable.
bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    set_error(error, errno_text("open(" + dir + ")"));
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  if (!ok) set_error(error, errno_text("fsync(" + dir + ")"));
  ::close(fd);
  return ok;
}

bool write_all_fd(int fd, const std::uint8_t* data, std::size_t n,
                  std::string* error) {
  while (n > 0) {
    const ssize_t put = ::write(fd, data, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_text("write"));
      return false;
    }
    data += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

PersistStatus read_file(const std::string& path, std::vector<std::uint8_t>* out,
                        std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return PersistStatus::kNotFound;
    set_error(error, errno_text("open(" + path + ")"));
    return PersistStatus::kIoError;
  }
  out->clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_text("read(" + path + ")"));
      ::close(fd);
      return PersistStatus::kIoError;
    }
    if (got == 0) break;
    out->insert(out->end(), buf, buf + got);
  }
  ::close(fd);
  return PersistStatus::kOk;
}

/// Write `data` to <path>.tmp, optionally fsync, rename over `path`,
/// optionally fsync the directory. Shared by snapshots and WAL rewrite.
PersistStatus atomic_replace(const std::string& path,
                             const std::vector<std::uint8_t>& data,
                             bool do_fsync, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, errno_text("open(" + tmp + ")"));
    return PersistStatus::kIoError;
  }
  if (!write_all_fd(fd, data.data(), data.size(), error)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return PersistStatus::kIoError;
  }
  if (do_fsync && ::fsync(fd) != 0) {
    set_error(error, errno_text("fsync(" + tmp + ")"));
    ::close(fd);
    ::unlink(tmp.c_str());
    return PersistStatus::kIoError;
  }
  ::close(fd);
  // Seeded kill site: the tmp file is complete but the rename has not
  // happened — a restart must still load the *previous* snapshot.
  crash_point_hit(CrashPoint::kSnapshotBeforeRename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, errno_text("rename(" + tmp + " -> " + path + ")"));
    ::unlink(tmp.c_str());
    return PersistStatus::kIoError;
  }
  if (do_fsync && !fsync_parent_dir(path, error)) return PersistStatus::kIoError;
  return PersistStatus::kOk;
}

std::vector<std::uint8_t> encode_wal_record(std::uint16_t type,
                                            const std::vector<std::uint8_t>& payload) {
  WireWriter body;
  body.u16(type);
  body.u16(0);  // reserved
  std::uint32_t crc = crc32(body.data().data(), body.size());
  crc = crc32(payload.data(), payload.size(), crc);

  WireWriter head;
  head.u32(static_cast<std::uint32_t>(payload.size()));
  head.u16(type);
  head.u16(0);
  head.u32(crc);
  std::vector<std::uint8_t> rec = head.data();
  rec.insert(rec.end(), payload.begin(), payload.end());
  return rec;
}

std::vector<std::uint8_t> encode_wal_header() {
  std::vector<std::uint8_t> h(kWalMagic.begin(), kWalMagic.end());
  WireWriter w;
  w.u16(kWalFormatVersion);
  w.u16(0);
  h.insert(h.end(), w.data().begin(), w.data().end());
  return h;
}

struct CrashArm {
  std::atomic<int> point{0};
  std::atomic<int> countdown{0};
};
CrashArm g_crash;

}  // namespace

const char* persist_status_name(PersistStatus s) {
  switch (s) {
    case PersistStatus::kOk: return "ok";
    case PersistStatus::kNotFound: return "not-found";
    case PersistStatus::kIoError: return "io-error";
    case PersistStatus::kCorrupt: return "corrupt";
    case PersistStatus::kVersionSkew: return "version-skew";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  // Table-driven reflected CRC-32 (polynomial 0xEDB88320), computed once.
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_snapshot(std::uint16_t kind,
                                          std::uint16_t kind_version,
                                          const std::vector<std::uint8_t>& payload) {
  WireWriter meta;
  meta.u16(kind);
  meta.u16(kind_version);
  std::uint32_t crc = crc32(meta.data().data(), meta.size());
  crc = crc32(payload.data(), payload.size(), crc);

  std::vector<std::uint8_t> out(kSnapMagic.begin(), kSnapMagic.end());
  WireWriter w;
  w.u16(kSnapFormatVersion);
  w.u16(kind);
  w.u16(kind_version);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc);
  out.insert(out.end(), w.data().begin(), w.data().end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

PersistStatus decode_snapshot(const std::uint8_t* data, std::size_t size,
                              std::uint16_t expected_kind,
                              std::uint16_t expected_kind_version,
                              std::vector<std::uint8_t>* payload,
                              std::string* error) {
  if (size < kSnapHeaderBytes) {
    set_error(error, "snapshot shorter than header");
    return PersistStatus::kCorrupt;
  }
  if (std::memcmp(data, kSnapMagic.data(), 4) != 0) {
    set_error(error, "bad snapshot magic");
    return PersistStatus::kCorrupt;
  }
  WireReader r(data + 4, size - 4);
  std::uint16_t fmt = 0, kind = 0, kind_version = 0;
  std::uint32_t len = 0, crc = 0;
  if (!r.u16(&fmt) || !r.u16(&kind) || !r.u16(&kind_version) || !r.u32(&len) ||
      !r.u32(&crc)) {
    set_error(error, "snapshot header truncated");
    return PersistStatus::kCorrupt;
  }
  if (size - kSnapHeaderBytes != len) {
    set_error(error, "snapshot payload length mismatch (header says " +
                         std::to_string(len) + ", file has " +
                         std::to_string(size - kSnapHeaderBytes) + ")");
    return PersistStatus::kCorrupt;
  }
  const std::uint8_t* body = data + kSnapHeaderBytes;
  WireWriter meta;
  meta.u16(kind);
  meta.u16(kind_version);
  std::uint32_t want = crc32(meta.data().data(), meta.size());
  want = crc32(body, len, want);
  if (want != crc) {
    set_error(error, "snapshot CRC mismatch");
    return PersistStatus::kCorrupt;
  }
  // Only once the checksum holds do version fields mean anything.
  if (fmt != kSnapFormatVersion) {
    set_error(error, "unsupported snapshot format version " + std::to_string(fmt));
    return PersistStatus::kVersionSkew;
  }
  if (kind != expected_kind || kind_version != expected_kind_version) {
    set_error(error, "snapshot kind/version skew (have " + std::to_string(kind) +
                         "/" + std::to_string(kind_version) + ", want " +
                         std::to_string(expected_kind) + "/" +
                         std::to_string(expected_kind_version) + ")");
    return PersistStatus::kVersionSkew;
  }
  payload->assign(body, body + len);
  return PersistStatus::kOk;
}

PersistStatus save_snapshot(const std::string& path, std::uint16_t kind,
                            std::uint16_t kind_version,
                            const std::vector<std::uint8_t>& payload,
                            std::string* error, bool do_fsync) {
  return atomic_replace(path, encode_snapshot(kind, kind_version, payload),
                        do_fsync, error);
}

PersistStatus load_snapshot(const std::string& path, std::uint16_t expected_kind,
                            std::uint16_t expected_kind_version,
                            std::vector<std::uint8_t>* payload,
                            std::string* error) {
  std::vector<std::uint8_t> bytes;
  const PersistStatus rs = read_file(path, &bytes, error);
  if (rs != PersistStatus::kOk) return rs;
  return decode_snapshot(bytes.data(), bytes.size(), expected_kind,
                         expected_kind_version, payload, error);
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

WalReplay replay_wal_bytes(const std::uint8_t* data, std::size_t size) {
  WalReplay out;
  if (size < kWalHeaderBytes) {
    // Zero bytes is a legitimately fresh log; a partial header is a torn
    // first write — either way there are no records and the writer starts
    // from byte zero.
    out.valid_bytes = 0;
    out.truncated_tail = size > 0;
    return out;
  }
  if (std::memcmp(data, kWalMagic.data(), 4) != 0) {
    out.status = PersistStatus::kCorrupt;
    out.error = "bad WAL magic";
    return out;
  }
  WireReader hr(data + 4, 4);
  std::uint16_t fmt = 0, reserved = 0;
  hr.u16(&fmt);
  hr.u16(&reserved);
  if (fmt != kWalFormatVersion) {
    out.status = PersistStatus::kVersionSkew;
    out.error = "unsupported WAL format version " + std::to_string(fmt);
    return out;
  }
  std::size_t pos = kWalHeaderBytes;
  out.valid_bytes = pos;
  while (pos < size) {
    if (size - pos < kWalRecordHeaderBytes) {
      out.truncated_tail = true;
      break;
    }
    WireReader r(data + pos, kWalRecordHeaderBytes);
    std::uint32_t len = 0, crc = 0;
    std::uint16_t type = 0, rsvd = 0;
    r.u32(&len);
    r.u16(&type);
    r.u16(&rsvd);
    r.u32(&crc);
    if (len > kMaxWalRecordBytes || size - pos - kWalRecordHeaderBytes < len) {
      out.truncated_tail = true;
      break;
    }
    const std::uint8_t* payload = data + pos + kWalRecordHeaderBytes;
    WireWriter meta;
    meta.u16(type);
    meta.u16(rsvd);
    std::uint32_t want = crc32(meta.data().data(), meta.size());
    want = crc32(payload, len, want);
    if (want != crc) {
      out.truncated_tail = true;
      break;
    }
    WalRecord rec;
    rec.type = type;
    rec.payload.assign(payload, payload + len);
    out.records.push_back(std::move(rec));
    pos += kWalRecordHeaderBytes + len;
    out.valid_bytes = pos;
  }
  return out;
}

WalReplay replay_wal(const std::string& path) {
  WalReplay out;
  std::vector<std::uint8_t> bytes;
  const PersistStatus rs = read_file(path, &bytes, &out.error);
  if (rs != PersistStatus::kOk) {
    out.status = rs;
    return out;
  }
  return replay_wal_bytes(bytes.data(), bytes.size());
}

PersistStatus WalWriter::open(const std::string& path, std::uint64_t valid_bytes,
                              bool do_fsync, std::string* error) {
  close();
  fsync_ = do_fsync;
  path_ = path;
  const bool fresh = valid_bytes < kWalHeaderBytes;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    set_error(error, errno_text("open(" + path + ")"));
    return PersistStatus::kIoError;
  }
  // Physically drop any torn tail so the next append lands right after the
  // last acknowledged record.
  const off_t keep = fresh ? 0 : static_cast<off_t>(valid_bytes);
  if (::ftruncate(fd_, keep) != 0) {
    set_error(error, errno_text("ftruncate(" + path + ")"));
    close();
    return PersistStatus::kIoError;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    set_error(error, errno_text("lseek(" + path + ")"));
    close();
    return PersistStatus::kIoError;
  }
  if (fresh) {
    const std::vector<std::uint8_t> header = encode_wal_header();
    if (!write_all_fd(fd_, header.data(), header.size(), error)) {
      close();
      return PersistStatus::kIoError;
    }
    if (fsync_ && ::fsync(fd_) != 0) {
      set_error(error, errno_text("fsync(" + path + ")"));
      close();
      return PersistStatus::kIoError;
    }
  }
  return PersistStatus::kOk;
}

PersistStatus WalWriter::append(std::uint16_t type,
                                const std::vector<std::uint8_t>& payload,
                                std::string* error) {
  if (fd_ < 0) {
    set_error(error, "WAL not open");
    return PersistStatus::kIoError;
  }
  const std::vector<std::uint8_t> rec = encode_wal_record(type, payload);
  if (crash_point_due(CrashPoint::kWalMidAppend)) {
    // Die with half a record on disk: the torn tail replay must truncate.
    const std::size_t half = rec.size() / 2 + 1;
    write_all_fd(fd_, rec.data(), half < rec.size() ? half : rec.size(), error);
    crash_now();
  }
  if (!write_all_fd(fd_, rec.data(), rec.size(), error)) {
    return PersistStatus::kIoError;
  }
  if (fsync_ && ::fsync(fd_) != 0) {
    set_error(error, errno_text("fsync(" + path_ + ")"));
    return PersistStatus::kIoError;
  }
  return PersistStatus::kOk;
}

PersistStatus WalWriter::rewrite(const std::string& path,
                                 const std::vector<WalRecord>& records,
                                 bool do_fsync, std::string* error) {
  std::vector<std::uint8_t> data = encode_wal_header();
  for (const WalRecord& rec : records) {
    const std::vector<std::uint8_t> bytes = encode_wal_record(rec.type, rec.payload);
    data.insert(data.end(), bytes.begin(), bytes.end());
  }
  return atomic_replace(path, data, do_fsync, error);
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

// ---------------------------------------------------------------------------
// Crash points
// ---------------------------------------------------------------------------

void arm_crash_point(CrashPoint point, int countdown) {
  g_crash.point.store(static_cast<int>(point), std::memory_order_relaxed);
  g_crash.countdown.store(countdown < 1 ? 1 : countdown,
                          std::memory_order_relaxed);
}

void disarm_crash_points() {
  g_crash.point.store(0, std::memory_order_relaxed);
  g_crash.countdown.store(0, std::memory_order_relaxed);
}

bool crash_point_due(CrashPoint point) {
  if (g_crash.point.load(std::memory_order_relaxed) != static_cast<int>(point)) {
    return false;
  }
  return g_crash.countdown.fetch_sub(1, std::memory_order_relaxed) == 1;
}

void crash_point_hit(CrashPoint point) {
  if (crash_point_due(point)) crash_now();
}

void crash_now() {
  // _exit, not exit/abort: no atexit handlers, no flushing, no signal — the
  // closest portable stand-in for kill -9 that still has a known exit code.
  ::_exit(kCrashExitCode);
}

}  // namespace xtalk::util
