// Dense linear algebra for the MNA transient simulator.
//
// Validation circuits (a critical path plus its aggressors) have a few
// hundred nodes, so a dense LU with partial pivoting is simple and fast
// enough. The matrix type is row-major and owns its storage.
#pragma once

#include <cstddef>
#include <vector>

namespace xtalk::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting, reusable across solves with the
/// same sparsity-free dense structure.
class LuSolver {
 public:
  /// Factorize a (copied) square matrix. Returns false if singular to
  /// working precision.
  bool factorize(const Matrix& a);

  /// Solve A x = b using the stored factorization. b.size() == n.
  /// Returns the solution vector.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// One-shot convenience: solve A x = b. Returns empty vector if singular.
std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b);

}  // namespace xtalk::util
