#include "util/run_governor.hpp"

#include <chrono>

#ifdef __linux__
#include <unistd.h>

#include <cstdio>
#endif

namespace xtalk::util {

const char* budget_reason_name(BudgetReason reason) {
  switch (reason) {
    case BudgetReason::kNone: return "none";
    case BudgetReason::kDeadline: return "deadline";
    case BudgetReason::kSoftMemory: return "soft-memory";
    case BudgetReason::kHardMemory: return "hard-memory";
    case BudgetReason::kWaveformCalcs: return "waveform-calcs";
    case BudgetReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* budget_policy_name(BudgetPolicy policy) {
  switch (policy) {
    case BudgetPolicy::kAnytime: return "anytime";
    case BudgetPolicy::kStrictBudget: return "strict-budget";
  }
  return "unknown";
}

std::size_t RunGovernor::current_rss_bytes() {
#ifdef __linux__
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int got = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2 || resident_pages < 0) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

RunGovernor::RunGovernor(const RunBudget& budget, CancelToken* external,
                         GovernorHook* hook)
    : budget_(budget), external_(external), hook_(hook) {
  // A hard condition can fire while every analysis thread is busy inside a
  // level bucket; the watchdog turns it into an abort flag the thread pool
  // polls. Soft conditions wait for the next serial checkpoint instead.
  const bool watch_memory =
      budget_.hard_memory_bytes > 0 && current_rss_bytes() > 0;
  if (watch_memory || external_ != nullptr) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

RunGovernor::~RunGovernor() {
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
}

void RunGovernor::start() {
  if (started_) return;
  t0_ = std::chrono::steady_clock::now();
  started_ = true;
  checks_.store(0, std::memory_order_relaxed);
  reason_.store(BudgetReason::kNone, std::memory_order_relaxed);
  hard_.store(false, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
}

void RunGovernor::finish() { started_ = false; }

double RunGovernor::elapsed_seconds() const {
  if (!started_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

void RunGovernor::exhaust(BudgetReason reason, bool hard) {
  BudgetReason expected = BudgetReason::kNone;
  // First condition wins and sticks; a later (even harder) condition does
  // not rewrite the reason, but it may still raise the abort flag.
  //
  // Release ordering throughout: exhaust() may run on the watchdog thread
  // while workers poll abort_flag() between items. The abort store is the
  // publication point — a worker's acquire load of abort_ (thread pool) or
  // of reason_/hard_ (engine accessors) must observe the reason and hard
  // bit written before it, otherwise the engine could see "aborted" with a
  // stale kNone reason and misreport the truncation.
  reason_.compare_exchange_strong(expected, reason,
                                  std::memory_order_release,
                                  std::memory_order_relaxed);
  if (hard) {
    hard_.store(true, std::memory_order_release);
    abort_.store(true, std::memory_order_release);
  }
}

BudgetReason RunGovernor::checkpoint(std::size_t work_done) {
  const std::uint64_t check_index =
      checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hook_ != nullptr) hook_->on_checkpoint(check_index, work_done);
  // Sticky: once exhausted, later checkpoints report the same reason so
  // every caller truncates at one consistent point.
  BudgetReason current = reason_.load(std::memory_order_relaxed);
  if (current != BudgetReason::kNone) return current;

  if (external_ != nullptr && external_->cancelled()) {
    exhaust(BudgetReason::kCancelled, external_->hard());
    return reason();
  }
  if (budget_.max_waveform_calcs > 0 &&
      work_done >= budget_.max_waveform_calcs) {
    exhaust(BudgetReason::kWaveformCalcs, false);
    return reason();
  }
  if (budget_.deadline_ms > 0.0 &&
      elapsed_seconds() * 1e3 >= budget_.deadline_ms) {
    exhaust(BudgetReason::kDeadline, false);
    return reason();
  }
  if (budget_.soft_memory_bytes > 0 || budget_.hard_memory_bytes > 0) {
    const std::size_t rss = current_rss_bytes();
    if (budget_.hard_memory_bytes > 0 && rss > budget_.hard_memory_bytes) {
      exhaust(BudgetReason::kHardMemory, true);
      return reason();
    }
    if (budget_.soft_memory_bytes > 0 && rss > budget_.soft_memory_bytes) {
      exhaust(BudgetReason::kSoftMemory, false);
      return reason();
    }
  }
  return BudgetReason::kNone;
}

void RunGovernor::watchdog_main() {
  // Coarse polling is enough: the flag only short-circuits work that is
  // about to be thrown away. 10 ms keeps the thread invisible in profiles.
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    if (external_ != nullptr && external_->cancelled() && external_->hard()) {
      exhaust(BudgetReason::kCancelled, true);
    }
    if (budget_.hard_memory_bytes > 0 &&
        current_rss_bytes() > budget_.hard_memory_bytes) {
      exhaust(BudgetReason::kHardMemory, true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace xtalk::util
