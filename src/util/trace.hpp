#pragma once

// Low-overhead tracing: RAII spans recorded into fixed-capacity per-thread
// ring buffers, exported as Chrome trace-event JSON (open the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Contract:
//  - One writer per TraceBuffer (the owning thread). push() never locks,
//    never allocates; overflow overwrites the oldest event and bumps a
//    dropped counter.
//  - A null TraceBuffer* means "tracing disabled": TraceSpan degrades to a
//    single pointer test, no clock reads, no stores. Instrumentation sites
//    pay one predictable branch when tracing is off.
//  - Event names and argument names must have static storage duration
//    (string literals); events store the pointers, not copies.
//  - snapshot()/write_chrome_trace() are meant for quiescent buffers (after
//    the instrumented run has joined its workers); they are not synchronized
//    against a concurrent push().

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xtalk::util {

/// Monotonic timestamp in nanoseconds (steady clock; never goes backwards).
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceEvent {
  const char* name = nullptr;  ///< static lifetime (string literal)
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;  ///< == t0_ns marks an instant event
  const char* arg0_name = nullptr;  ///< null = no argument
  const char* arg1_name = nullptr;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

/// Fixed-capacity single-writer ring. All storage is allocated up front in
/// the constructor; push() is a couple of stores plus an index wrap.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void push(const TraceEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return count_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Copies the surviving events oldest-first.
  std::vector<TraceEvent> snapshot() const;
  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< events currently held (<= capacity)
  std::uint64_t dropped_ = 0;
};

/// RAII span. Records [construction, destruction) into `buffer`; a null
/// buffer disables the span entirely. Not copyable or movable: a span is
/// pinned to the scope (and thread) that opened it.
class TraceSpan {
 public:
  explicit TraceSpan(TraceBuffer* buffer, const char* name,
                     const char* arg0_name = nullptr, std::int64_t arg0 = 0,
                     const char* arg1_name = nullptr, std::int64_t arg1 = 0)
      : buffer_(buffer) {
    if (buffer_ == nullptr) return;
    event_.name = name;
    event_.arg0_name = arg0_name;
    event_.arg0 = arg0;
    event_.arg1_name = arg1_name;
    event_.arg1 = arg1;
    event_.t0_ns = monotonic_ns();
  }
  ~TraceSpan() { finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early (idempotent); used when the enclosing scope keeps
  /// going but the measured phase is over.
  void finish() {
    if (buffer_ == nullptr) return;
    event_.t1_ns = monotonic_ns();
    if (event_.t1_ns == event_.t0_ns) ++event_.t1_ns;  // keep "X", not "i"
    buffer_->push(event_);
    buffer_ = nullptr;
  }

 private:
  TraceBuffer* buffer_;
  TraceEvent event_;
};

/// Zero-duration marker event ("i" phase in the Chrome viewer).
inline void trace_instant(TraceBuffer* buffer, const char* name,
                          const char* arg0_name = nullptr,
                          std::int64_t arg0 = 0,
                          const char* arg1_name = nullptr,
                          std::int64_t arg1 = 0) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.t0_ns = e.t1_ns = monotonic_ns();
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  buffer->push(e);
}

/// One trace per instrumented run: a ring buffer per participating thread
/// (buffer index == ThreadPool thread id; index 0 is the calling thread).
class TraceSession {
 public:
  TraceSession(std::size_t num_threads, std::size_t events_per_thread);

  std::size_t num_threads() const { return buffers_.size(); }
  TraceBuffer* buffer(std::size_t thread_id) {
    return buffers_[thread_id].get();
  }
  const TraceBuffer* buffer(std::size_t thread_id) const {
    return buffers_[thread_id].get();
  }

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;
  void clear();

  /// All buffers merged into Chrome trace-event JSON. Timestamps are
  /// microseconds relative to the session start; tid is the thread index.
  std::string chrome_trace_json(const std::string& process_name) const;

  /// Writes chrome_trace_json() to `path`. Returns false (and fills *error
  /// when given) on I/O failure.
  bool write_chrome_trace(const std::string& path,
                          const std::string& process_name,
                          std::string* error = nullptr) const;

 private:
  std::uint64_t base_ns_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

}  // namespace xtalk::util
