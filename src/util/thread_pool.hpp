// A small persistent worker pool for level-synchronous parallel loops.
//
// The STA engine processes one topological level at a time; inside a level
// every gate is independent (each writes only its own output net), so the
// natural execution model is a parallel-for with a barrier between levels
// (Galois' "TopoBarrier" schedule). The pool keeps its workers alive across
// levels and passes — spawning threads per level would dominate the runtime
// of small levels.
//
// No external dependencies: plain std::thread + mutex/condvar dispatch with
// an atomic index counter for dynamic load balancing. Work is handed out as
// indices, so the *content* of the computation never depends on which
// worker executes it — determinism is the caller's contract (see
// sta/engine.cpp's snapshot-based coupling classification).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xtalk::util {

class ThreadPool {
 public:
  /// Worker callback: fn(index, thread_id). `index` walks [begin, end) of
  /// the current loop; `thread_id` is in [0, num_threads()) and stable for
  /// the duration of one parallel_for (use it to index per-thread scratch).
  using LoopFn = std::function<void(std::size_t, std::size_t)>;

  /// Spawns `num_threads - 1` workers; the calling thread participates as
  /// thread 0. `num_threads` is clamped to at least 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Run fn(i, thread_id) for every i in [begin, end), blocking until all
  /// iterations finished. Exceptions thrown by fn are captured and the
  /// first one is rethrown on the calling thread after the barrier.
  ///
  /// `abort` (optional, borrowed) is polled between indices: once it reads
  /// true, workers stop claiming new indices and the loop returns early
  /// with iterations unprocessed. This is reserved for hard-cancellation
  /// paths (run governor hard memory cap / hard CancelToken) where the
  /// caller is about to abandon the whole result — a soft budget must
  /// instead let the level finish to keep anytime results deterministic.
  void parallel_for(std::size_t begin, std::size_t end, const LoopFn& fn,
                    const std::atomic<bool>* abort = nullptr);

  /// Map a user-facing thread-count request to an actual count:
  /// 0 = std::thread::hardware_concurrency(), otherwise the value itself
  /// (minimum 1).
  static std::size_t resolve_threads(int requested);

  /// Busy/wait accounting for the trace/metrics layer. `busy_ns` is time
  /// spent inside run_loop (claiming indices and running fn); `wait_ns` is
  /// dispatch latency from parallel_for's hand-off to each thread entering
  /// its loop (queue wait). Measurements, not deterministic quantities.
  struct Timing {
    std::uint64_t busy_ns = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t loops = 0;  ///< parallel_for invocations
  };

  /// Off by default; when off, the only cost per loop is one relaxed load
  /// per participating thread. Flip only while no loop is in flight.
  void set_timing_enabled(bool enabled) {
    timing_enabled_.store(enabled, std::memory_order_relaxed);
  }
  Timing timing_total() const;
  void reset_timing();

 private:
  void worker_main(std::size_t thread_id);
  void run_loop(std::size_t thread_id);

  std::vector<std::thread> workers_;

  // Per-thread timing slots (index == thread id), allocated once in the
  // constructor so the hot path never touches the allocator.
  std::atomic<bool> timing_enabled_{false};
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> wait_ns_;
  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::uint64_t> dispatch_ns_{0};

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for

  // State of the loop in flight (valid while a generation is active).
  const LoopFn* fn_ = nullptr;
  const std::atomic<bool>* abort_ = nullptr;
  std::size_t end_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t workers_running_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace xtalk::util
