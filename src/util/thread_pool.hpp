// A small persistent worker pool with two dispatch modes.
//
// parallel_for() is the level-synchronous mode: the STA engine's barrier
// scheduler processes one topological level at a time; inside a level every
// gate is independent (each writes only its own output net), so the natural
// execution model is a parallel-for with a barrier between levels (Galois'
// "TopoBarrier" schedule).
//
// run_dynamic() is the dependency-driven mode ("ByDependency"): the caller
// seeds an initial ready set and each task may push more items as they
// become ready (typically when an atomic fanin countdown hits zero). The
// loop drains until quiescence — no queued items and no task in flight —
// with no intermediate barriers. Priority buckets order the queue weakly
// (lower value first) for the "TopoSoftPriority" variant.
//
// The pool keeps its workers alive across levels and passes — spawning
// threads per loop would dominate the runtime of small levels.
//
// No external dependencies: plain std::thread + mutex/condvar dispatch with
// an atomic index counter for dynamic load balancing. Work is handed out as
// indices, so the *content* of the computation never depends on which
// worker executes it — determinism is the caller's contract (see
// sta/engine.cpp's pass-anchored coupling classification).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xtalk::util {

class ThreadPool {
 public:
  /// Worker callback: fn(index, thread_id). `index` walks [begin, end) of
  /// the current loop (parallel_for) or is a queued item (run_dynamic);
  /// `thread_id` is in [0, num_threads()) and stable for the duration of
  /// one loop (use it to index per-thread scratch).
  using LoopFn = std::function<void(std::size_t, std::size_t)>;

  /// An entry of run_dynamic's initial ready set. Lower priority runs
  /// first (weakly: a worker never idles to wait for a better-priority
  /// item; priorities only order the queue).
  struct ReadyItem {
    std::uint32_t item = 0;
    std::uint32_t priority = 0;
  };

  /// Spawns `num_threads - 1` workers; the calling thread participates as
  /// thread 0. `num_threads` is clamped to at least 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Run fn(i, thread_id) for every i in [begin, end), blocking until all
  /// iterations finished. Exceptions thrown by fn are captured and the
  /// first one is rethrown on the calling thread after the barrier.
  ///
  /// `abort` (optional, borrowed) is polled between indices with acquire
  /// ordering — paired with the release store in RunGovernor::exhaust(), so
  /// a worker that observes the flag also observes everything the raiser
  /// published before it (the sticky reason, the hard bit). Once it reads
  /// true, workers stop claiming new indices and the loop returns early
  /// with iterations unprocessed. This is reserved for hard-cancellation
  /// paths (run governor hard memory cap / hard CancelToken) where the
  /// caller is about to abandon the whole result — a soft budget must
  /// instead let the level finish to keep anytime results deterministic.
  void parallel_for(std::size_t begin, std::size_t end, const LoopFn& fn,
                    const std::atomic<bool>* abort = nullptr);

  /// Dependency-driven dispatch: run fn(item, thread_id) for every item of
  /// `initial` and every item later published with push_ready() (only legal
  /// from inside fn), blocking until quiescence — the queue is empty and no
  /// task is in flight. There is no barrier anywhere: an item runs as soon
  /// as a worker is free, so the caller's tasks must synchronize their own
  /// cross-task reads (the STA engine does this with an acq_rel fanin
  /// countdown whose last decrement publishes the item).
  ///
  /// `num_priorities` sizes the priority buckets ([0, num_priorities));
  /// pass 1 for plain FIFO. `abort` matches parallel_for (hard
  /// cancellation, acquire-polled). `stop` (optional, borrowed) is the
  /// cooperative soft-stop: once a task sets it, no further queued item is
  /// claimed, but every task already started runs to completion — the
  /// "every item that starts also finishes" contract the engine's anytime
  /// truncation relies on. Exceptions from fn stop dispatch the same way
  /// and the first one is rethrown after quiescence.
  void run_dynamic(const std::vector<ReadyItem>& initial,
                   std::size_t num_priorities, const LoopFn& fn,
                   const std::atomic<bool>* abort = nullptr,
                   const std::atomic<bool>* stop = nullptr);

  /// Publish an item as ready. Thread-safe; only valid while a run_dynamic
  /// loop is in flight (from inside its fn). Lower priority runs first;
  /// values >= the loop's num_priorities are clamped into the last bucket.
  void push_ready(std::uint32_t item, std::uint32_t priority = 0);

  /// Map a user-facing thread-count request to an actual count:
  /// 0 = std::thread::hardware_concurrency(), otherwise the value itself
  /// (minimum 1).
  static std::size_t resolve_threads(int requested);

  /// Busy/wait accounting for the trace/metrics layer. `busy_ns` is time
  /// spent executing loop bodies (claiming items and running fn, minus any
  /// time blocked on the ready queue); `wait_ns` is time a participating
  /// thread was idle while a loop was in flight: dispatch latency from the
  /// hand-off to the thread entering its loop, barrier wait from a thread
  /// finishing its share of a parallel_for until the whole loop ends, and
  /// ready-queue blocking inside run_dynamic. `ready_wait_ns` additionally
  /// sums, per executed dynamic item, the time from push_ready() to the
  /// item being claimed (how long ready work sat in the queue).
  /// Measurements, not deterministic quantities.
  struct Timing {
    std::uint64_t busy_ns = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t ready_wait_ns = 0;
    std::uint64_t loops = 0;  ///< parallel_for + run_dynamic invocations
  };

  /// Off by default; when off, the only cost per loop is one relaxed load
  /// per participating thread. Flip only while no loop is in flight.
  void set_timing_enabled(bool enabled) {
    timing_enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Totals across threads. Only legal on a quiescent pool (no loop in
  /// flight): the per-thread slots are written with relaxed ops by workers,
  /// so reading them mid-loop would race and tear the numbers. Enforced:
  /// throws std::logic_error when called while a loop is running.
  Timing timing_total() const;
  /// Zero the totals. Same quiescence contract as timing_total().
  void reset_timing();

 private:
  struct DynItem {
    std::uint32_t item = 0;
    std::uint64_t ready_ns = 0;  ///< push timestamp; 0 when timing is off
  };

  void worker_main(std::size_t thread_id);
  void run_loop(std::size_t thread_id);
  void run_dynamic_loop(std::size_t thread_id);
  void require_quiescent(const char* what) const;

  std::vector<std::thread> workers_;

  // Per-thread timing slots (index == thread id), allocated once in the
  // constructor so the hot path never touches the allocator.
  std::atomic<bool> timing_enabled_{false};
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> wait_ns_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> ready_wait_ns_;
  /// Time each thread left its share of the current parallel_for; the
  /// caller turns the gap to loop end into barrier wait.
  std::unique_ptr<std::atomic<std::uint64_t>[]> exit_ns_;
  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::uint64_t> dispatch_ns_{0};
  /// True while any loop is in flight (set/cleared by the calling thread);
  /// guards the quiescence contract of timing_total()/reset_timing().
  std::atomic<bool> in_dispatch_{false};

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;  ///< bumped once per dispatched loop

  // State of the loop in flight (valid while a generation is active).
  const LoopFn* fn_ = nullptr;
  const std::atomic<bool>* abort_ = nullptr;
  bool dynamic_mode_ = false;  ///< selects run_loop vs run_dynamic_loop
  std::size_t end_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t workers_running_ = 0;
  std::exception_ptr first_error_;

  // Dynamic-dispatch queue state (guarded by dyn_mutex_). Buckets are
  // FIFO deques indexed by priority; dyn_cursor_ is the lowest bucket that
  // may be non-empty (reset by a lower-priority push).
  std::mutex dyn_mutex_;
  std::condition_variable dyn_cv_;
  std::vector<std::deque<DynItem>> dyn_buckets_;
  std::size_t dyn_cursor_ = 0;
  std::size_t dyn_queued_ = 0;
  std::size_t dyn_in_flight_ = 0;
  const std::atomic<bool>* dyn_stop_ = nullptr;
  bool dyn_error_stop_ = false;  ///< first exception stops further claims
};

}  // namespace xtalk::util
