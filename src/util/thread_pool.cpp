#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/trace.hpp"

namespace xtalk::util {

namespace {

/// Marks the pool non-quiescent for the duration of a dispatch, so
/// timing_total()/reset_timing() can enforce their call-point contract.
struct DispatchGuard {
  explicit DispatchGuard(std::atomic<bool>& flag) : flag_(flag) {
    flag_.store(true, std::memory_order_release);
  }
  ~DispatchGuard() { flag_.store(false, std::memory_order_release); }
  std::atomic<bool>& flag_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  wait_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  ready_wait_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  exit_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t t = 0; t < n; ++t) {
    busy_ns_[t].store(0, std::memory_order_relaxed);
    wait_ns_[t].store(0, std::memory_order_relaxed);
    ready_wait_ns_[t].store(0, std::memory_order_relaxed);
    exit_ns_[t].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::require_quiescent(const char* what) const {
  if (in_dispatch_.load(std::memory_order_acquire)) {
    throw std::logic_error(std::string("ThreadPool::") + what +
                           " called while a loop is in flight; the timing "
                           "slots are only stable on a quiescent pool");
  }
}

ThreadPool::Timing ThreadPool::timing_total() const {
  require_quiescent("timing_total");
  Timing t;
  const std::size_t n = num_threads();
  for (std::size_t i = 0; i < n; ++i) {
    t.busy_ns += busy_ns_[i].load(std::memory_order_relaxed);
    t.wait_ns += wait_ns_[i].load(std::memory_order_relaxed);
    t.ready_wait_ns += ready_wait_ns_[i].load(std::memory_order_relaxed);
  }
  t.loops = loops_.load(std::memory_order_relaxed);
  return t;
}

void ThreadPool::reset_timing() {
  require_quiescent("reset_timing");
  const std::size_t n = num_threads();
  for (std::size_t i = 0; i < n; ++i) {
    busy_ns_[i].store(0, std::memory_order_relaxed);
    wait_ns_[i].store(0, std::memory_order_relaxed);
    ready_wait_ns_[i].store(0, std::memory_order_relaxed);
  }
  loops_.store(0, std::memory_order_relaxed);
}

void ThreadPool::run_loop(std::size_t thread_id) {
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  std::uint64_t t_enter = 0;
  if (timed) {
    t_enter = monotonic_ns();
    const std::uint64_t dispatched =
        dispatch_ns_.load(std::memory_order_relaxed);
    if (t_enter > dispatched) {
      wait_ns_[thread_id].fetch_add(t_enter - dispatched,
                                    std::memory_order_relaxed);
    }
  }
  const LoopFn& fn = *fn_;
  const std::atomic<bool>* abort = abort_;
  for (;;) {
    // Acquire pairs with the release store in RunGovernor::exhaust(): a
    // thread that sees the abort also sees the sticky reason/hard bit
    // written before it.
    if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) break;
    try {
      fn(i, thread_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  if (timed) {
    const std::uint64_t t_exit = monotonic_ns();
    busy_ns_[thread_id].fetch_add(t_exit - t_enter,
                                  std::memory_order_relaxed);
    // The caller turns the gap from here to loop end into barrier wait.
    exit_ns_[thread_id].store(t_exit, std::memory_order_relaxed);
  }
}

void ThreadPool::run_dynamic_loop(std::size_t thread_id) {
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  std::uint64_t t_enter = 0;
  std::uint64_t cv_wait_total = 0;
  if (timed) {
    t_enter = monotonic_ns();
    const std::uint64_t dispatched =
        dispatch_ns_.load(std::memory_order_relaxed);
    if (t_enter > dispatched) {
      wait_ns_[thread_id].fetch_add(t_enter - dispatched,
                                    std::memory_order_relaxed);
    }
  }
  const LoopFn& fn = *fn_;
  const std::atomic<bool>* abort = abort_;
  const std::atomic<bool>* stop = dyn_stop_;
  for (;;) {
    // Same acquire pairing as run_loop (see RunGovernor::exhaust()).
    if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
    DynItem item;
    {
      std::unique_lock<std::mutex> lock(dyn_mutex_);
      // Sleep only while the queue is empty but peers are still in flight
      // (they may publish more ready items). Quiescence, abort, stop and
      // error all wake us so we can re-evaluate.
      const auto wake = [&] {
        return dyn_queued_ > 0 || dyn_in_flight_ == 0 || dyn_error_stop_ ||
               (abort != nullptr &&
                abort->load(std::memory_order_acquire)) ||
               (stop != nullptr && stop->load(std::memory_order_acquire));
      };
      std::uint64_t w0 = 0;
      if (timed && !wake()) w0 = monotonic_ns();
      dyn_cv_.wait(lock, wake);
      if (w0 != 0) cv_wait_total += monotonic_ns() - w0;
      if (dyn_error_stop_) break;
      if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
      if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
      if (dyn_queued_ == 0) break;  // quiescent: nothing queued, none in flight
      while (dyn_buckets_[dyn_cursor_].empty()) ++dyn_cursor_;
      item = dyn_buckets_[dyn_cursor_].front();
      dyn_buckets_[dyn_cursor_].pop_front();
      --dyn_queued_;
      ++dyn_in_flight_;
    }
    if (timed && item.ready_ns != 0) {
      const std::uint64_t now = monotonic_ns();
      if (now > item.ready_ns) {
        ready_wait_ns_[thread_id].fetch_add(now - item.ready_ns,
                                            std::memory_order_relaxed);
      }
    }
    try {
      fn(item.item, thread_id);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(dyn_mutex_);
        dyn_error_stop_ = true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(dyn_mutex_);
      --dyn_in_flight_;
      if (dyn_error_stop_ || (dyn_in_flight_ == 0 && dyn_queued_ == 0)) {
        dyn_cv_.notify_all();
      }
    }
  }
  // Whatever made this thread leave (quiescence, abort, stop, error) must
  // also be re-evaluated by sleeping peers, even if the flag was raised by
  // an external thread that never touches dyn_cv_ (e.g. the governor
  // watchdog raising abort between a peer's wake check and its sleep).
  dyn_cv_.notify_all();
  if (timed) {
    const std::uint64_t elapsed = monotonic_ns() - t_enter;
    const std::uint64_t busy =
        elapsed > cv_wait_total ? elapsed - cv_wait_total : 0;
    busy_ns_[thread_id].fetch_add(busy, std::memory_order_relaxed);
    wait_ns_[thread_id].fetch_add(cv_wait_total, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_main(std::size_t thread_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    bool dynamic = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      dynamic = dynamic_mode_;
    }
    if (dynamic) {
      run_dynamic_loop(thread_id);
    } else {
      run_loop(thread_id);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const LoopFn& fn,
                              const std::atomic<bool>* abort) {
  if (begin >= end) return;
  DispatchGuard in_dispatch(in_dispatch_);
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  if (timed) {
    loops_.fetch_add(1, std::memory_order_relaxed);
    dispatch_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  }
  if (workers_.empty()) {
    const std::uint64_t t_enter = timed ? monotonic_ns() : 0;
    for (std::size_t i = begin; i < end; ++i) {
      // Acquire: pairs with RunGovernor::exhaust() (see run_loop).
      if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
      fn(i, 0);
    }
    if (timed) {
      busy_ns_[0].fetch_add(monotonic_ns() - t_enter,
                            std::memory_order_relaxed);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    abort_ = abort;
    dynamic_mode_ = false;
    end_ = end;
    next_.store(begin, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    first_error_ = nullptr;
    if (timed) {
      for (std::size_t t = 0; t < num_threads(); ++t) {
        exit_ns_[t].store(0, std::memory_order_relaxed);
      }
    }
    ++generation_;
  }
  start_cv_.notify_all();
  run_loop(0);  // the caller is thread 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  if (timed) {
    // Barrier wait: every participant is done (their exit_ns_ stores
    // happen-before the workers_running_ decrement we just observed), so
    // the gap from each thread's exit to now is time it idled at the
    // barrier waiting for the slowest thread.
    const std::uint64_t loop_end = monotonic_ns();
    for (std::size_t t = 0; t < num_threads(); ++t) {
      const std::uint64_t e = exit_ns_[t].load(std::memory_order_relaxed);
      if (e != 0 && loop_end > e) {
        wait_ns_[t].fetch_add(loop_end - e, std::memory_order_relaxed);
      }
    }
  }
  fn_ = nullptr;
  abort_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_dynamic(const std::vector<ReadyItem>& initial,
                             std::size_t num_priorities, const LoopFn& fn,
                             const std::atomic<bool>* abort,
                             const std::atomic<bool>* stop) {
  if (initial.empty()) return;
  DispatchGuard in_dispatch(in_dispatch_);
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  std::uint64_t t0 = 0;
  if (timed) {
    loops_.fetch_add(1, std::memory_order_relaxed);
    t0 = monotonic_ns();
    dispatch_ns_.store(t0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(dyn_mutex_);
    dyn_buckets_.assign(std::max<std::size_t>(1, num_priorities), {});
    dyn_cursor_ = 0;
    dyn_queued_ = initial.size();
    dyn_in_flight_ = 0;
    dyn_stop_ = stop;
    dyn_error_stop_ = false;
    for (const ReadyItem& r : initial) {
      const std::size_t p =
          std::min<std::size_t>(r.priority, dyn_buckets_.size() - 1);
      dyn_buckets_[p].push_back(DynItem{r.item, t0});
    }
  }
  if (workers_.empty()) {
    fn_ = &fn;
    abort_ = abort;
    first_error_ = nullptr;
    run_dynamic_loop(0);
    fn_ = nullptr;
    abort_ = nullptr;
    {
      std::lock_guard<std::mutex> lock(dyn_mutex_);
      dyn_stop_ = nullptr;
    }
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    abort_ = abort;
    dynamic_mode_ = true;
    workers_running_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_dynamic_loop(0);  // the caller is thread 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  fn_ = nullptr;
  abort_ = nullptr;
  dynamic_mode_ = false;
  {
    std::lock_guard<std::mutex> dyn_lock(dyn_mutex_);
    dyn_stop_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::push_ready(std::uint32_t item, std::uint32_t priority) {
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  const std::uint64_t ready_ns = timed ? monotonic_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(dyn_mutex_);
    const std::size_t p =
        std::min<std::size_t>(priority, dyn_buckets_.size() - 1);
    dyn_buckets_[p].push_back(DynItem{item, ready_ns});
    if (p < dyn_cursor_) dyn_cursor_ = p;
    ++dyn_queued_;
  }
  dyn_cv_.notify_one();
}

}  // namespace xtalk::util
