#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/trace.hpp"

namespace xtalk::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  wait_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t t = 0; t < n; ++t) {
    busy_ns_[t].store(0, std::memory_order_relaxed);
    wait_ns_[t].store(0, std::memory_order_relaxed);
  }
  workers_.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::Timing ThreadPool::timing_total() const {
  Timing t;
  const std::size_t n = num_threads();
  for (std::size_t i = 0; i < n; ++i) {
    t.busy_ns += busy_ns_[i].load(std::memory_order_relaxed);
    t.wait_ns += wait_ns_[i].load(std::memory_order_relaxed);
  }
  t.loops = loops_.load(std::memory_order_relaxed);
  return t;
}

void ThreadPool::reset_timing() {
  const std::size_t n = num_threads();
  for (std::size_t i = 0; i < n; ++i) {
    busy_ns_[i].store(0, std::memory_order_relaxed);
    wait_ns_[i].store(0, std::memory_order_relaxed);
  }
  loops_.store(0, std::memory_order_relaxed);
}

void ThreadPool::run_loop(std::size_t thread_id) {
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  std::uint64_t t_enter = 0;
  if (timed) {
    t_enter = monotonic_ns();
    const std::uint64_t dispatched =
        dispatch_ns_.load(std::memory_order_relaxed);
    if (t_enter > dispatched) {
      wait_ns_[thread_id].fetch_add(t_enter - dispatched,
                                    std::memory_order_relaxed);
    }
  }
  const LoopFn& fn = *fn_;
  const std::atomic<bool>* abort = abort_;
  for (;;) {
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) break;
    try {
      fn(i, thread_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  if (timed) {
    busy_ns_[thread_id].fetch_add(monotonic_ns() - t_enter,
                                  std::memory_order_relaxed);
  }
}

void ThreadPool::worker_main(std::size_t thread_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_loop(thread_id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const LoopFn& fn,
                              const std::atomic<bool>* abort) {
  if (begin >= end) return;
  const bool timed = timing_enabled_.load(std::memory_order_relaxed);
  if (timed) {
    loops_.fetch_add(1, std::memory_order_relaxed);
    dispatch_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  }
  if (workers_.empty()) {
    const std::uint64_t t_enter = timed ? monotonic_ns() : 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      fn(i, 0);
    }
    if (timed) {
      busy_ns_[0].fetch_add(monotonic_ns() - t_enter,
                            std::memory_order_relaxed);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    abort_ = abort;
    end_ = end;
    next_.store(begin, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_loop(0);  // the caller is thread 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  fn_ = nullptr;
  abort_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace xtalk::util
