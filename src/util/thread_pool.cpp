#include "util/thread_pool.hpp"

#include <algorithm>

namespace xtalk::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n - 1);
  for (std::size_t t = 1; t < n; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::run_loop(std::size_t thread_id) {
  const LoopFn& fn = *fn_;
  const std::atomic<bool>* abort = abort_;
  for (;;) {
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) break;
    try {
      fn(i, thread_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_main(std::size_t thread_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_loop(thread_id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const LoopFn& fn,
                              const std::atomic<bool>* abort) {
  if (begin >= end) return;
  if (workers_.empty()) {
    for (std::size_t i = begin; i < end; ++i) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) return;
      fn(i, 0);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    abort_ = abort;
    end_ = end;
    next_.store(begin, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_loop(0);  // the caller is thread 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  fn_ = nullptr;
  abort_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace xtalk::util
