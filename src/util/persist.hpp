// Durable on-disk state for the crash-only analysis service.
//
// Two complementary formats, both explicit-LE via util/wire (no struct
// memcpy, stable across compilers):
//
//   Snapshot — one self-contained checksummed blob replaced atomically:
//     write to <path>.tmp, fsync, rename over <path>, fsync the directory.
//     A reader either sees the old snapshot or the new one, never a torn
//     mix. Layout: "XTSN" magic, u16 format version, u16 kind, u16 kind
//     version, u32 payload length, u32 CRC-32 (over kind, kind version and
//     payload), payload bytes.
//
//   WAL — an append-only journal of checksummed records:
//     header "XTWL" + u16 format version + u16 reserved, then records of
//     [u32 len][u16 type][u16 reserved][u32 crc][payload]. Replay stops at
//     the first record whose length or CRC does not check out and reports
//     the torn tail; the writer reopens at the last valid byte so a crash
//     mid-append costs at most the record being written — never an earlier
//     acknowledged one.
//
// Every load error is typed (PersistStatus) — corruption is *detected*,
// never silently decoded into wrong state. The crash-point facility at the
// bottom lets a forked test child schedule a `_exit()` at a seeded durability
// boundary (mid-append, post-append/pre-ack, pre-rename, mid-run) so the
// recovery invariants are proven under real `kill -9`-style deaths.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace xtalk::util {

/// Typed outcome of every load/replay. Anything but kOk means the caller
/// got *no* state — there is no partial-success decode.
enum class PersistStatus : std::uint8_t {
  kOk = 0,
  kNotFound,     ///< file does not exist (a fresh start, not an error)
  kIoError,      ///< open/read/write/fsync/rename failed (errno in message)
  kCorrupt,      ///< bad magic, length or CRC — bytes are not trustworthy
  kVersionSkew,  ///< recognized file, unsupported format or kind version
};

const char* persist_status_name(PersistStatus s);

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff). `seed` chains
/// incremental updates: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Serialize a snapshot blob (magic + header + CRC + payload) to memory.
std::vector<std::uint8_t> encode_snapshot(std::uint16_t kind,
                                          std::uint16_t kind_version,
                                          const std::vector<std::uint8_t>& payload);

/// Validate + extract a snapshot blob from memory. On anything but kOk the
/// payload is left untouched.
PersistStatus decode_snapshot(const std::uint8_t* data, std::size_t size,
                              std::uint16_t expected_kind,
                              std::uint16_t expected_kind_version,
                              std::vector<std::uint8_t>* payload,
                              std::string* error);

/// Atomically replace `path` with a snapshot of `payload`: tmp file, fsync,
/// rename, directory fsync. With `do_fsync` false the fsyncs are skipped
/// (tests on tmpfs); atomicity of the rename is kept either way.
PersistStatus save_snapshot(const std::string& path, std::uint16_t kind,
                            std::uint16_t kind_version,
                            const std::vector<std::uint8_t>& payload,
                            std::string* error, bool do_fsync = true);

PersistStatus load_snapshot(const std::string& path, std::uint16_t expected_kind,
                            std::uint16_t expected_kind_version,
                            std::vector<std::uint8_t>* payload,
                            std::string* error);

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

struct WalRecord {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Result of replaying a WAL file (or byte buffer).
struct WalReplay {
  PersistStatus status = PersistStatus::kOk;
  std::vector<WalRecord> records;   ///< every record that checksummed clean
  std::uint64_t valid_bytes = 0;    ///< prefix length covering `records`
  bool truncated_tail = false;      ///< trailing garbage/torn record dropped
  std::string error;
};

/// Replay from memory (shared by the file path and the fuzzer).
WalReplay replay_wal_bytes(const std::uint8_t* data, std::size_t size);

/// Replay from disk. kNotFound when the file does not exist; a torn tail is
/// kOk with truncated_tail set (crash-mid-append is the *expected* shape of
/// the file, not corruption).
WalReplay replay_wal(const std::string& path);

/// Append-only WAL writer. open() truncates the file to `valid_bytes` (as
/// reported by replay_wal) so a torn tail is physically removed before new
/// records land after it.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Open (creating the header when fresh). `valid_bytes` 0 = fresh file.
  PersistStatus open(const std::string& path, std::uint64_t valid_bytes,
                     bool do_fsync, std::string* error);

  /// Append one record and (when enabled) fsync before returning: once this
  /// returns kOk the record survives kill -9. Honors the kWalMidAppend
  /// crash point by dying after a deliberately torn partial write.
  PersistStatus append(std::uint16_t type,
                       const std::vector<std::uint8_t>& payload,
                       std::string* error);

  /// Atomically replace the log with exactly `records` (compaction): writes
  /// a fresh tmp log, fsyncs, renames over `path`.
  static PersistStatus rewrite(const std::string& path,
                               const std::vector<WalRecord>& records,
                               bool do_fsync, std::string* error);

  void close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  bool fsync_ = true;
  std::string path_;
};

// ---------------------------------------------------------------------------
// Crash-point injection (fork-based tests)
// ---------------------------------------------------------------------------

/// Seeded kill sites. A forked server child arms one point with a countdown;
/// the Nth crossing calls _exit(kCrashExitCode) — the in-process analogue of
/// a scheduled `kill -9` that lands on an exact durability boundary.
enum class CrashPoint : int {
  kNone = 0,
  kWalMidAppend,         ///< die halfway through a record write (torn tail)
  kWalAfterAppend,       ///< die after fsync but before the ack frame
  kSnapshotBeforeRename, ///< die with the tmp file written, rename pending
  kEcoRunMid,            ///< die inside an ECO re-timing run
  kCount,
};

/// Exit code used by crash points, distinguishable from asserts/signals.
inline constexpr int kCrashExitCode = 113;

/// Arm `point` to fire on its `countdown`-th crossing (1 = first). Resets
/// any previous arming of that point.
void arm_crash_point(CrashPoint point, int countdown);
void disarm_crash_points();

/// True when this crossing should crash — the caller performs its
/// deliberately-torn side effect first, then calls crash_now().
bool crash_point_due(CrashPoint point);

/// Crossing for sites with no torn side effect: dies immediately when due.
void crash_point_hit(CrashPoint point);

[[noreturn]] void crash_now();

}  // namespace xtalk::util
