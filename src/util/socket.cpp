#include "util/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/diag.hpp"

namespace xtalk::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  Diagnostic d;
  d.code = DiagCode::kFileError;
  d.severity = Severity::kError;
  d.message = what + ": " + std::strerror(errno);
  throw DiagError(std::move(d));
}

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// connect(2) with correct EINTR semantics. Unlike read/write, an
/// interrupted connect is NOT restartable: the kernel keeps establishing the
/// connection asynchronously, and calling connect() again can yield a bogus
/// EADDRINUSE/EALREADY. The POSIX-sanctioned recovery is to poll for
/// writability and read the final status via SO_ERROR. Essential once the
/// supervisor's SIGCHLD is landing on threads mid-connect.
void connect_eintr_safe(Socket& s, const sockaddr* addr, socklen_t len,
                        const std::string& what) {
  if (::connect(s.fd(), addr, len) == 0) return;
  if (errno != EINTR) throw_errno(what);
  for (;;) {
    pollfd pfd{s.fd(), POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(" + what + ")");
    }
    break;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
    throw_errno("getsockopt(" + what + ")");
  }
  if (err != 0) {
    errno = err;
    throw_errno(what);
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::close_abortive() {
  if (fd_ >= 0) {
    struct linger lg;
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  close();
}

short Socket::poll_wait(short events, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  for (;;) {
    pollfd pfd{fd_, events, 0};
    int wait_ms = timeout_ms;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      wait_ms = left > 0 ? static_cast<int>(left) : 0;
    }
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return pfd.revents;
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void Socket::set_nonblocking(bool nonblocking) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd_, F_SETFL, wanted) < 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

std::ptrdiff_t Socket::recv_some(void* buf, std::size_t n, bool* would_block,
                                 std::string* error) {
  *would_block = false;
  for (;;) {
    const ssize_t got = ::read(fd_, buf, n);
    if (got >= 0) return got;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return -1;
    }
    if (error != nullptr) *error = errno_text("read");
    return -1;
  }
}

std::ptrdiff_t Socket::send_some(const void* buf, std::size_t n,
                                 bool* would_block, std::string* error) {
  *would_block = false;
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE, not SIGPIPE.
    const ssize_t put = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (put >= 0) return put;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return -1;
    }
    if (error != nullptr) *error = errno_text("send");
    return -1;
  }
}

void Socket::send_all(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    bool would_block = false;
    std::string error;
    const std::ptrdiff_t put = send_some(p, n, &would_block, &error);
    if (put < 0) {
      if (would_block) continue;  // blocking socket: retry is a spurious wake
      Diagnostic d;
      d.code = DiagCode::kFileError;
      d.severity = Severity::kError;
      d.message = error;
      throw DiagError(std::move(d));
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
}

void Socket::recv_exact(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    bool would_block = false;
    std::string error;
    const std::ptrdiff_t got = recv_some(p, n, &would_block, &error);
    if (got == 0) {
      Diagnostic d;
      d.code = DiagCode::kFileError;
      d.severity = Severity::kError;
      d.message = "connection closed mid-frame (" + std::to_string(n) +
                  " bytes outstanding)";
      throw DiagError(std::move(d));
    }
    if (got < 0) {
      if (would_block) continue;
      Diagnostic d;
      d.code = DiagCode::kFileError;
      d.severity = Severity::kError;
      d.message = error;
      throw DiagError(std::move(d));
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
}

Listener Listener::unix_domain(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    Diagnostic d;
    d.code = DiagCode::kFileError;
    d.severity = Severity::kError;
    d.message = "unix socket path too long: " + path;
    throw DiagError(std::move(d));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale file from a crashed daemon
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(s.fd(), backlog) < 0) throw_errno("listen(" + path + ")");
  s.set_nonblocking(true);

  Listener l;
  l.socket_ = std::move(s);
  l.unix_path_ = path;
  return l;
}

Listener Listener::tcp_loopback(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(s.fd(), backlog) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  s.set_nonblocking(true);

  Listener l;
  l.socket_ = std::move(s);
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Listener::~Listener() { close(); }

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    socket_ = std::move(other.socket_);
    unix_path_ = std::move(other.unix_path_);
    port_ = other.port_;
    other.unix_path_.clear();
  }
  return *this;
}

Socket Listener::accept_nonblocking() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      s.set_nonblocking(true);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return s;
    }
    if (errno == EINTR) continue;
    return Socket();  // EAGAIN and transient accept errors: nothing pending
  }
}

void Listener::close() {
  socket_.close();
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    Diagnostic d;
    d.code = DiagCode::kFileError;
    d.severity = Severity::kError;
    d.message = "unix socket path too long: " + path;
    throw DiagError(std::move(d));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_UNIX)");
  connect_eintr_safe(s, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                     "connect(" + path + ")");
  return s;
}

Socket connect_tcp_loopback(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  connect_eintr_safe(s, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                     "connect(127.0.0.1:" + std::to_string(port) + ")");
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_ = Socket(fds[0]);
  write_ = Socket(fds[1]);
  read_.set_nonblocking(true);
  write_.set_nonblocking(true);
}

void WakePipe::notify() {
  const char b = 1;
  // Best-effort: a full pipe already guarantees a pending wake.
  [[maybe_unused]] const ssize_t rc = ::write(write_.fd(), &b, 1);
}

void WakePipe::drain() {
  char buf[256];
  for (;;) {
    const ssize_t got = ::read(read_.fd(), buf, sizeof(buf));
    if (got > 0) continue;
    // A signal landing mid-drain must not leave wake bytes behind — the
    // poll loop would spin on a level-triggered readable pipe.
    if (got < 0 && errno == EINTR) continue;
    return;
  }
}

}  // namespace xtalk::util
