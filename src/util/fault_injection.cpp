#include "util/fault_injection.hpp"

namespace xtalk::util {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNewtonDiverge: return "newton-diverge";
    case FaultKind::kNanCurrent: return "nan-current";
    case FaultKind::kSingularMatrix: return "singular-matrix";
  }
  return "unknown";
}

void FaultInjector::add(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.push_back(Armed{spec, 0, 0});
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Armed& a : specs_) {
    a.seen = 0;
    a.fired = 0;
  }
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
}

FireInfo FaultInjector::should_fire(FaultKind kind, std::int64_t gate) {
  std::lock_guard<std::mutex> lock(mutex_);
  FireInfo info;
  for (Armed& a : specs_) {
    if (a.spec.kind != kind) continue;
    if (a.spec.gate >= 0 && a.spec.gate != gate) continue;
    const std::uint64_t call = a.seen++;
    if (call < a.spec.after) continue;
    if (a.fired >= a.spec.count) continue;
    info.fire = true;
    if (a.fired == 0) info.first = true;
    ++a.fired;
  }
  return info;
}

std::uint64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Armed& a : specs_) total += a.fired;
  return total;
}

}  // namespace xtalk::util
