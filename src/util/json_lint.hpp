#pragma once

// Validation-grade JSON reader. Used by tests and tools to round-trip the
// JSON this codebase emits (bench reports, Chrome traces) and fail loudly on
// malformed output. It is a strict recursive-descent parser over the full
// JSON grammar, not a general-purpose DOM: numbers are kept as double only,
// and \uXXXX escapes are preserved verbatim rather than decoded.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xtalk::util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }
};

/// Parses `text` (which must be a single JSON value plus optional
/// whitespace). On failure returns false and describes the problem and its
/// byte offset in *error when given.
bool parse_json(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace xtalk::util
