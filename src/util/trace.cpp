#include "util/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace xtalk::util {

namespace {

// Event/argument names are expected to be identifier-like literals, but the
// exporter must never emit broken JSON, so escape defensively anyway.
void append_json_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microseconds with nanosecond resolution kept in the fraction.
void append_micros(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_event_args(std::string& out, const TraceEvent& e) {
  if (e.arg0_name == nullptr && e.arg1_name == nullptr) return;
  out += ",\"args\":{";
  bool first = true;
  if (e.arg0_name != nullptr) {
    append_json_escaped(out, e.arg0_name);
    out += ':';
    out += std::to_string(e.arg0);
    first = false;
  }
  if (e.arg1_name != nullptr) {
    if (!first) out += ',';
    append_json_escaped(out, e.arg1_name);
    out += ':';
    out += std::to_string(e.arg1);
  }
  out += '}';
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void TraceBuffer::push(const TraceEvent& event) {
  ring_[next_] = event;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at next_ when the ring has wrapped, at 0 otherwise.
  const std::size_t start = count_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::clear() {
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

TraceSession::TraceSession(std::size_t num_threads,
                           std::size_t events_per_thread)
    : base_ns_(monotonic_ns()) {
  buffers_.reserve(std::max<std::size_t>(num_threads, 1));
  for (std::size_t t = 0; t < std::max<std::size_t>(num_threads, 1); ++t) {
    buffers_.push_back(std::make_unique<TraceBuffer>(events_per_thread));
  }
}

std::uint64_t TraceSession::total_events() const {
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->size();
  return n;
}

std::uint64_t TraceSession::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped();
  return n;
}

void TraceSession::clear() {
  base_ns_ = monotonic_ns();
  for (auto& b : buffers_) b->clear();
}

std::string TraceSession::chrome_trace_json(
    const std::string& process_name) const {
  std::string out = "{\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":";
  append_json_escaped(out, process_name.c_str());
  out += "}}";
  for (std::size_t t = 0; t < buffers_.size(); ++t) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(t);
    out += ",\"args\":{\"name\":\"";
    out += t == 0 ? "engine" : "worker-" + std::to_string(t);
    out += "\"}}";
  }
  for (std::size_t t = 0; t < buffers_.size(); ++t) {
    for (const TraceEvent& e : buffers_[t]->snapshot()) {
      // Events recorded before clear()/construction of this session would
      // have negative relative timestamps; clamp defensively.
      const std::uint64_t t0 = e.t0_ns >= base_ns_ ? e.t0_ns - base_ns_ : 0;
      const std::uint64_t t1 = e.t1_ns >= e.t0_ns ? e.t1_ns - e.t0_ns : 0;
      out += ",{\"name\":";
      append_json_escaped(out, e.name != nullptr ? e.name : "?");
      out += ",\"cat\":\"xtalk\"";
      if (t1 == 0) {
        out += ",\"ph\":\"i\",\"s\":\"t\"";
      } else {
        out += ",\"ph\":\"X\",\"dur\":";
        append_micros(out, t1);
      }
      out += ",\"ts\":";
      append_micros(out, t0);
      out += ",\"pid\":0,\"tid\":";
      out += std::to_string(t);
      append_event_args(out, e);
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

bool TraceSession::write_chrome_trace(const std::string& path,
                                      const std::string& process_name,
                                      std::string* error) const {
  // Write-then-rename: a failed or interrupted export must never leave a
  // truncated (corrupt) JSON file at `path` — the reader either sees the
  // previous complete trace or the new complete trace, and failures surface
  // through the return value (the engine turns it into a diagnostic).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out << chrome_trace_json(process_name);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      if (error != nullptr) *error = "write to " + tmp + " failed";
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "rename " + tmp + " -> " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace xtalk::util
