// Physical unit helpers. The whole library works in SI units internally
// (seconds, volts, amps, farads, ohms, meters); these constants make call
// sites readable and reports convert at the edge.
#pragma once

namespace xtalk::util {

// Time
inline constexpr double kSecond = 1.0;
inline constexpr double kMilliSecond = 1e-3;
inline constexpr double kMicroSecond = 1e-6;
inline constexpr double kNanoSecond = 1e-9;
inline constexpr double kPicoSecond = 1e-12;

// Capacitance
inline constexpr double kFarad = 1.0;
inline constexpr double kPicoFarad = 1e-12;
inline constexpr double kFemtoFarad = 1e-15;

// Resistance
inline constexpr double kOhm = 1.0;
inline constexpr double kKiloOhm = 1e3;

// Length
inline constexpr double kMeter = 1.0;
inline constexpr double kMicron = 1e-6;
inline constexpr double kNanoMeter = 1e-9;

// Current
inline constexpr double kAmp = 1.0;
inline constexpr double kMilliAmp = 1e-3;
inline constexpr double kMicroAmp = 1e-6;

/// Convert seconds to nanoseconds for reporting.
inline constexpr double to_ns(double seconds) { return seconds / kNanoSecond; }
/// Convert farads to femtofarads for reporting.
inline constexpr double to_ff(double farads) { return farads / kFemtoFarad; }

}  // namespace xtalk::util
