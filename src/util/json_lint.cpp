#include "util/json_lint.hpp"

#include <cctype>
#include <cstdlib>

namespace xtalk::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                0) {
              return fail("bad \\u escape");
            }
          }
          // Preserved, not decoded: good enough for round-trip checks.
          out->append("\\u");
          out->append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fall through to digits
    }
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (consume('.')) {
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return parse_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return parse_literal("false");
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          out->items.emplace_back();
          skip_ws();
          if (!parse_value(&out->items.back(), depth + 1)) return false;
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          skip_ws();
          out->members.emplace_back(std::move(key), JsonValue{});
          if (!parse_value(&out->members.back().second, depth + 1)) {
            return false;
          }
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return fail("expected ',' or '}'");
        }
      }
      default: return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text, error).parse(out);
}

}  // namespace xtalk::util
