// Run governance: deadlines, memory budgets, cooperative cancellation.
//
// A production STA service must bound every run in time and memory, not
// just survive solver faults. The iterative algorithm is an *anytime*
// computation — each coupling pass only tightens the upper bound of the
// one-step analysis — so a run interrupted between level buckets can still
// return a provably conservative answer instead of failing.
//
// The pieces:
//   RunBudget    — declarative limits (wall-clock deadline, soft/hard RSS
//                  caps, waveform-calculation cap) plus the exhaustion
//                  policy (anytime truncation vs. strict throw).
//   CancelToken  — cooperative cancellation flag an external owner (RPC
//                  handler, scheduler) can set; checked at the same
//                  serial points as the budget.
//   RunGovernor  — per-run enforcement: checkpoint() is called at level
//                  boundaries of the parallel engine, between iterative
//                  passes, in IncrementalSta's early-activity update, and
//                  in the transient solver's outer loop. All checkpoint
//                  sites are serial, so the decision to truncate is a
//                  deterministic function of (budget, elapsed state) and —
//                  for count-based budgets — independent of thread count.
//   GovernorHook — test-only observer invoked at every checkpoint; lets a
//                  test burn wall-clock time at a deterministic point so
//                  deadline truncation reproduces bitwise at any thread
//                  count.
//
// Hard conditions (hard RSS cap, hard external cancel) additionally raise
// an abort flag that the thread pool polls between loop indices, so a run
// about to be killed stops claiming work mid-level instead of finishing
// the bucket first. Soft conditions never abandon a level: the current
// level always completes, which is what keeps anytime results bitwise
// reproducible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace xtalk::util {

/// Why a run was truncated (StaResult::budget.reason). Append only — bench
/// JSON reports key on the names.
enum class BudgetReason {
  kNone,           ///< budget not exhausted
  kDeadline,       ///< wall-clock deadline passed
  kSoftMemory,     ///< resident set exceeded the soft cap
  kHardMemory,     ///< resident set exceeded the hard cap (always throws)
  kWaveformCalcs,  ///< waveform-calculation budget spent
  kCancelled,      ///< external CancelToken requested cancellation
};

const char* budget_reason_name(BudgetReason reason);

/// What to do when a budget is exhausted.
enum class BudgetPolicy {
  /// Finish the current level bucket, then return the anytime result: the
  /// last completed coupling pass (or the partial first pass with untimed
  /// endpoints explicitly marked). The default.
  kAnytime,
  /// Throw util::DiagError (code kBudgetExhausted) at the first exhausted
  /// checkpoint instead of returning a partial result.
  kStrictBudget,
};

const char* budget_policy_name(BudgetPolicy policy);

/// Declarative per-run limits. Zero means unlimited for every field, so a
/// default-constructed budget changes nothing (and the engine's checkpoint
/// degenerates to pure reads on the hot path).
struct RunBudget {
  /// Wall-clock deadline for the whole run [ms]. Soft: the level in flight
  /// when it passes still completes.
  double deadline_ms = 0.0;
  /// Resident-set-size caps [bytes], polled at checkpoints (and, for the
  /// hard cap, by a background watchdog). Soft truncates anytime-style;
  /// hard aborts the level in flight and throws regardless of policy.
  /// No-ops on platforms without /proc/self/statm.
  std::size_t soft_memory_bytes = 0;
  std::size_t hard_memory_bytes = 0;
  /// Cap on waveform calculations (the unit of work of the engine; the
  /// transient solver counts accepted time steps instead). Checked at
  /// serial points only, so truncation is bitwise thread-count invariant.
  std::size_t max_waveform_calcs = 0;
  BudgetPolicy policy = BudgetPolicy::kAnytime;

  bool unlimited() const {
    return deadline_ms <= 0.0 && soft_memory_bytes == 0 &&
           hard_memory_bytes == 0 && max_waveform_calcs == 0;
  }
};

/// Cooperative cancellation flag. The owner (an RPC handler, a scheduler,
/// a Ctrl-C handler) calls request(); the analysis observes it at governor
/// checkpoints and truncates anytime-style (hard = true additionally stops
/// the thread pool from claiming new work). Reusable across runs via
/// reset(); all operations are lock-free.
class CancelToken {
 public:
  void request(bool hard = false) {
    cancelled_.store(true, std::memory_order_relaxed);
    if (hard) hard_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  bool hard() const { return hard_.load(std::memory_order_relaxed); }
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    hard_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> hard_{false};
};

/// Test-only checkpoint observer (StaOptions::governor_hook). `check_index`
/// counts checkpoints of the current run; `work_done` is the engine's
/// waveform-calculation counter (or the transient solver's step counter)
/// at the checkpoint. Both are deterministic across thread counts because
/// every checkpoint site is serial.
class GovernorHook {
 public:
  virtual ~GovernorHook() = default;
  virtual void on_checkpoint(std::uint64_t check_index,
                             std::size_t work_done) = 0;
};

/// Per-run budget enforcement. Not copyable (owns the watchdog thread).
/// Thread-safety: checkpoint() must be called from serial points only (it
/// is not reentrant); exhausted()/abort_flag() may be read from anywhere.
class RunGovernor {
 public:
  explicit RunGovernor(const RunBudget& budget,
                       CancelToken* external = nullptr,
                       GovernorHook* hook = nullptr);
  ~RunGovernor();

  RunGovernor(const RunGovernor&) = delete;
  RunGovernor& operator=(const RunGovernor&) = delete;

  /// (Re)start the run clock and clear the exhaustion state. Idempotent
  /// until finish(): a caller that pre-starts the governor (IncrementalSta
  /// charges its early-activity update against the same deadline) keeps
  /// its epoch when the engine calls start() again.
  void start();
  /// Mark the run finished; the next start() begins a new epoch.
  void finish();

  /// Serial budget check. Records the first exhausted condition and sticks
  /// to it (a run truncates for exactly one reason). Returns the sticky
  /// reason, kNone while within budget. With an unlimited budget and no
  /// external token this is a handful of pure reads.
  BudgetReason checkpoint(std::size_t work_done);

  // Reason/hard reads are acquire to pair with the release stores in
  // exhaust(): the watchdog thread may raise the condition, and a reader
  // (worker observing the abort flag, engine deciding how to truncate)
  // must see the sticky reason and hard bit that were written before it.
  bool exhausted() const {
    return reason_.load(std::memory_order_acquire) != BudgetReason::kNone;
  }
  BudgetReason reason() const {
    return reason_.load(std::memory_order_acquire);
  }
  /// True when the exhausted condition is hard (hard RSS cap or hard
  /// cancel): the run must abort rather than return an anytime result.
  bool hard_exhausted() const {
    return hard_.load(std::memory_order_acquire);
  }
  /// Raised on hard conditions; the thread pool polls it with acquire
  /// ordering between work items (both dispatch modes) so an aborting run
  /// stops claiming work mid-level and sees the reason/hard stores that
  /// preceded the flag.
  const std::atomic<bool>& abort_flag() const { return abort_; }

  /// Checkpoints seen this run. Readable from any thread (tests, metrics
  /// snapshots) while checkpoints are still being taken; the count itself
  /// only ever advances from serial checkpoint sites, so it is bitwise
  /// thread-count invariant.
  std::uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  double elapsed_seconds() const;
  const RunBudget& budget() const { return budget_; }

  /// Current resident set size [bytes] from /proc/self/statm; 0 when the
  /// platform does not expose it (memory caps are then inert).
  static std::size_t current_rss_bytes();

 private:
  void exhaust(BudgetReason reason, bool hard);
  void watchdog_main();

  RunBudget budget_;
  CancelToken* external_;  ///< borrowed; may be null
  GovernorHook* hook_;     ///< borrowed; may be null (test-only)
  std::chrono::steady_clock::time_point t0_;
  bool started_ = false;
  // Relaxed atomic: bumped only at serial checkpoints, but read concurrently
  // by result aggregation and watchdog-adjacent observers — a plain integer
  // here is a data race under TSan even though the value could not tear.
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<BudgetReason> reason_{BudgetReason::kNone};
  std::atomic<bool> hard_{false};
  std::atomic<bool> abort_{false};

  // Watchdog (only spawned when a hard condition can fire asynchronously:
  // hard memory cap or an external token that may request hard cancel).
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
};

}  // namespace xtalk::util
