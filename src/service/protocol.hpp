// Request/response protocol of the analysis service (DESIGN.md §13).
//
// Transport framing: every message is one frame — a 4-byte little-endian
// payload length followed by the payload; the payload starts with
// [u8 MsgType][u32 request_id] and continues with the type-specific body
// encoded by util::WireWriter. request_id is chosen by the client and
// echoed verbatim on the response, so a client may pipeline requests on one
// connection (the server still executes them in order — ECO edits are
// order-dependent).
//
// Determinism: every double crosses the wire as its IEEE-754 bit pattern
// (util::wire f64), so a RunResultMsg decoded by the client is *bitwise*
// the StaResult summary the engine produced — the acceptance invariant
// "service result == one-shot CLI run" is checked down to the last ulp.
//
// Error handling: a malformed body never tears down the connection. The
// decoder's recoverable sticky error (util::WireReader) is surfaced as an
// ErrorMsg response (kMalformedFrame) and the connection keeps serving;
// only an unparseable *frame header* (oversized length) forces a close,
// since byte-stream resynchronization is impossible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sta/engine.hpp"
#include "util/wire.hpp"

namespace xtalk::service {

inline constexpr std::uint32_t kProtocolVersion = 4;
/// Frame header size on the socket (payload length prefix).
inline constexpr std::size_t kFrameHeaderBytes = 4;

enum class MsgType : std::uint8_t {
  // Requests.
  kHello = 1,
  kPing = 2,
  kRunSta = 3,          ///< full analysis run (RunSpec body)
  kQueryEndpoints = 4,  ///< all endpoint arrivals of the cached baseline
  kQuerySlack = 5,      ///< one endpoint's arrival/slack (what-if cheap read)
  kEcoOpen = 6,         ///< open an incremental ECO session (RunSpec body)
  kEcoEdit = 7,         ///< apply a batch of edits to a session
  kEcoRun = 8,          ///< incremental re-timing of a session
  kEcoClose = 9,
  kGetStats = 10,
  kShutdown = 11,       ///< begin drain; listener closes first
  kHealth = 12,         ///< cheap load probe (answered on the event loop)
  kEcoResume = 13,      ///< re-bind a durable session by resumption token

  // Responses.
  kHelloOk = 64,
  kPong = 65,
  kRunResult = 66,
  kEndpoints = 67,
  kSlack = 68,
  kEcoOpened = 69,
  kEcoEditOk = 70,
  kEcoClosed = 71,
  kStats = 72,
  kShutdownOk = 73,
  kHealthOk = 74,
  kEcoResumed = 75,
  kError = 127,
};

const char* msg_type_name(MsgType t);

/// Protocol-level error classes (ErrorMsg::code). Append only.
enum class ErrorCode : std::uint8_t {
  kMalformedFrame = 0,  ///< body failed to decode (reader's sticky error)
  kUnknownType = 1,     ///< MsgType outside the request range
  kBadRequest = 2,      ///< decoded fine, semantically invalid
  kUnknownSession = 3,  ///< ECO session id not open on this connection
  kEditRejected = 4,    ///< DesignEditor refused the edit (e.g. cycle)
  kShuttingDown = 5,    ///< server is draining; no new work admitted
  kInternal = 6,        ///< unexpected exception while serving
  kVersionMismatch = 7,  ///< hello carried an unsupported protocol version
};

const char* error_code_name(ErrorCode code);

// ---------------------------------------------------------------------------
// Request bodies
// ---------------------------------------------------------------------------

/// Hello carries the client's wire version so the server can reject a
/// mismatched client with a typed kVersionMismatch error instead of
/// misdecoding its frames. Version 1 clients sent an empty hello body; the
/// server treats that as version 1 (still rejected, but with a clean error).
struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// The numeric identity of an analysis request: every StaOptions field that
/// can change a computed value, plus the result-invariant knobs worth
/// echoing (scheduler) and per-request observability (trace_path — the
/// server qualifies it with the request id before running, so two
/// concurrent requests never clobber each other's trace file).
/// num_threads is deliberately absent: results are thread-count invariant
/// and the executor's long-lived pool decides the width.
struct RunSpec {
  sta::AnalysisMode mode = sta::AnalysisMode::kOneStep;
  sta::DelayModel delay_model = sta::DelayModel::kTransistorLevel;
  sta::Scheduler scheduler = sta::Scheduler::kLevelBarrier;
  double input_slew = 0.2e-9;
  double convergence_eps = 0.1e-12;
  std::int32_t max_passes = 10;
  bool esperance = false;
  double esperance_window = 1.0e-9;
  bool timing_windows = false;
  double early_sharp_slew = 20e-12;
  bool early_aiding_assist = true;
  util::FaultPolicy fault_policy = util::FaultPolicy::kDegrade;
  /// Per-request budget; zeros = server default. Admission may clamp it
  /// further under overload (anytime truncation, never an error).
  double deadline_ms = 0.0;
  std::uint64_t max_waveform_calcs = 0;
  util::BudgetPolicy budget_policy = util::BudgetPolicy::kAnytime;
  bool collect_metrics = false;
  std::string trace_path;
  // MCMM scenario identity (v4): the V/T corner the session regrids its
  // device model to, the per-scenario coupling derate, and the scenario
  // name for reports. Defaults describe the nominal scenario, whose wire
  // encoding therefore still maps onto the pre-v4 semantics.
  std::string scenario_name = "nominal";
  double vdd_scale = 1.0;
  double temperature_c = 25.0;
  double coupling_derate = 1.0;

  /// Materialize as engine options (pool/num_threads left to the caller;
  /// the V/T corner lives in the session's per-corner context, not in
  /// StaOptions).
  sta::StaOptions to_options() const;
  /// The scenario this spec names (mode override unset: `mode` already is
  /// this spec's mode).
  sta::Scenario scenario() const;
  /// Capture the numeric identity of existing options.
  static RunSpec from_options(const sta::StaOptions& options);
  /// Cache key for baseline result sharing: the encoded numeric fields,
  /// excluding trace_path/collect_metrics (observability never changes
  /// numbers).
  std::string cache_key() const;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// One ECO edit operation (mirrors the DesignEditor API).
struct EcoOp {
  enum class Kind : std::uint8_t {
    kResizeGate = 0,      ///< gate, factor
    kSetWireCap = 1,      ///< net_a, cap
    kSetCoupling = 2,     ///< net_a, net_b, cap
    kRemoveCoupling = 3,  ///< net_a, net_b
    kSetWireRc = 4,       ///< net_a, gate, pin, resistance, cap
    kRetargetSink = 5,    ///< gate, pin, net_a (new net), resistance, cap
  };
  Kind kind = Kind::kResizeGate;
  std::uint32_t gate = 0;
  std::uint32_t pin = 0;
  std::uint32_t net_a = 0;
  std::uint32_t net_b = 0;
  double value_a = 0.0;  ///< factor / cap / resistance
  double value_b = 0.0;  ///< cap of the RC ops

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct EcoEditMsg {
  std::uint32_t session_id = 0;
  /// 1-based index of this batch in the session's edit history. The server
  /// WAL-appends the batch *before* acking and dedupes replays: a batch with
  /// batch_seq ≤ the session's applied_seq is acked without re-applying, so
  /// a client retrying across a crash gets exactly-once application. 0 =
  /// unsequenced (no dedupe; pre-v3 behavior).
  std::uint64_t batch_seq = 0;
  std::vector<EcoOp> ops;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// Re-bind a durable ECO session after a server restart (or a dropped
/// connection) by the token eco_open returned. The server rebuilds the
/// session from its WAL and answers with the new per-connection session id
/// plus applied_seq — the client replays its journal from there.
struct EcoResumeMsg {
  std::uint64_t token = 0;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// One scenario of a multi-scenario slack query (v4): overrides applied on
/// top of the query's base RunSpec to name that scenario's baseline.
struct WireScenario {
  std::string name;
  double vdd_scale = 1.0;
  double temperature_c = 25.0;
  double coupling_derate = 1.0;
  bool override_mode = false;
  std::uint8_t mode = 0;  ///< sta::AnalysisMode when override_mode

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct SlackQueryMsg {
  RunSpec spec;             ///< which baseline to read (computed on demand)
  std::uint32_t net = 0;    ///< endpoint net
  bool rising = true;
  double required_time = 0.0;  ///< slack = required - arrival
  /// Scenarios to evaluate (v4): the response carries the minimum slack
  /// over all of them (worst-across-scenarios). Empty = just `spec`.
  std::vector<WireScenario> scenarios;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

// ---------------------------------------------------------------------------
// Response bodies
// ---------------------------------------------------------------------------

/// eco_open response: the per-connection session id plus a resumption token
/// that survives both connection loss and server restart (v3). Token 0 means
/// the server runs without a --state-dir (volatile sessions, v2 semantics).
struct EcoOpenedMsg {
  std::uint32_t session_id = 0;
  std::uint64_t token = 0;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// eco_resume response.
struct EcoResumedMsg {
  std::uint32_t session_id = 0;
  std::uint64_t token = 0;
  std::uint64_t applied_seq = 0;  ///< highest durable batch_seq

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct HelloOkMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string design_name;
  std::uint64_t num_gates = 0;
  std::uint64_t num_nets = 0;
  std::uint64_t num_levels = 0;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct WireEndpoint {
  std::uint32_t net = 0;
  bool rising = true;
  double arrival = 0.0;
};

struct WireDiagnostic {
  std::uint8_t code = 0;
  std::uint8_t severity = 0;
  std::int64_t gate = -1;
  std::int64_t net = -1;
  std::int32_t level = -1;
  std::int32_t pass = -1;
  std::string message;
};

/// The StaResult summary the service ships: everything a client needs to
/// reproduce reports and check the bitwise contract — scalar results, the
/// critical endpoint, *all* endpoint arrivals, the governor's anytime
/// status, diagnostics, and the qualified trace path the server actually
/// wrote (empty when tracing was off). Per-net waveforms stay server-side.
struct RunResultMsg {
  double longest_path_delay = 0.0;
  WireEndpoint critical;
  std::vector<WireEndpoint> endpoints;
  std::int32_t passes = 0;
  std::uint64_t waveform_calculations = 0;
  std::uint64_t gates_reused = 0;
  double runtime_seconds = 0.0;
  std::int32_t threads_used = 1;
  std::uint8_t scheduler = 0;
  std::uint64_t missing_sink_wires = 0;
  // Budget / anytime status.
  bool budget_exhausted = false;
  std::uint8_t budget_reason = 0;
  std::int32_t completed_passes = 0;
  std::uint64_t completed_levels = 0;
  std::uint64_t total_levels = 0;
  bool conservative = true;
  std::uint64_t governor_checks = 0;
  std::vector<std::uint32_t> untimed_endpoints;
  // Diagnostics (deterministic order, possibly truncated by the sink cap).
  std::uint64_t diagnostics_dropped = 0;
  std::vector<WireDiagnostic> diagnostics;
  // Observability echo.
  std::string trace_path;  ///< request-id-qualified path the server wrote

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);

  /// Summarize an engine result (trace_path filled by the caller).
  static RunResultMsg from_result(const sta::StaResult& result);
};

struct EndpointsMsg {
  double longest_path_delay = 0.0;
  WireEndpoint critical;
  std::vector<WireEndpoint> endpoints;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct SlackMsg {
  bool valid = false;  ///< endpoint exists in the baseline
  double arrival = 0.0;  ///< of the worst scenario
  double slack = 0.0;    ///< minimum over the queried scenarios
  /// Name of the scenario owning the minimum slack (v4): the query's
  /// scenario_name on a single-scenario query; first-wins on exact ties.
  std::string worst_scenario;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// Server-side counters (kGetStats). All totals since start().
struct StatsMsg {
  std::uint64_t requests_total = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_error = 0;
  std::uint64_t requests_truncated = 0;
  std::uint64_t requests_degraded_admission = 0;
  std::uint64_t eco_sessions_open = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t queue_peak = 0;
  double uptime_seconds = 0.0;
  /// ECO sessions destroyed because their connection died (vs. client
  /// kEcoClose). A growing value under chaos is expected; a growing value
  /// in production means clients are leaking sessions.
  std::uint64_t eco_sessions_reaped = 0;
  std::uint64_t connections_evicted = 0;  ///< stall/backpressure evictions
  // Crash-only durability (v3). All zero on a volatile (no --state-dir)
  // server.
  std::uint64_t restart_generation = 0;  ///< 1 on first boot, +1 per restart
  std::uint64_t snapshot_age_ms = 0;     ///< ms since the last snapshot write
  std::uint64_t wal_records = 0;         ///< records in the WAL since compaction
  std::uint64_t eco_sessions_resumed = 0;  ///< token re-binds served

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

/// Load-shedding probe (kHealth → kHealthOk). Served directly from the
/// event loop without touching an executor, so it stays responsive even
/// when every worker is busy — exactly what an LB health check needs.
struct HealthMsg {
  bool accepting = true;  ///< false once drain started
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint64_t connections = 0;
  std::uint64_t queue_depth = 0;       ///< queued + in-flight requests
  std::uint64_t soft_queue_limit = 0;  ///< admission clamp threshold
  bool clamping = false;               ///< queue_depth ≥ soft_queue_limit
  std::uint64_t eco_sessions_open = 0;
  std::uint64_t outbox_bytes = 0;  ///< responses buffered for slow readers
  // Crash-only durability (v3); zero without --state-dir.
  std::uint64_t restart_generation = 0;
  std::uint64_t snapshot_age_ms = 0;
  std::uint64_t wal_records = 0;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  void encode(util::WireWriter& w) const;
  bool decode(util::WireReader& r);
};

// ---------------------------------------------------------------------------
// Framing helpers
// ---------------------------------------------------------------------------

/// Serialize a complete frame: length prefix + [type][request_id][body].
std::vector<std::uint8_t> make_frame(MsgType type, std::uint32_t request_id,
                                     const util::WireWriter& body);

/// Parse the payload prologue ([type][request_id]) and leave `r` positioned
/// at the body. Returns false (reader poisoned) on a bad type byte.
bool read_prologue(util::WireReader& r, MsgType* type,
                   std::uint32_t* request_id);

/// Qualify a trace path with the request id so concurrent requests sharing
/// one StaOptions::trace_path never clobber each other: inserts "-req<id>"
/// before a trailing ".json", appends it otherwise. Empty stays empty.
std::string qualified_trace_path(const std::string& path,
                                 std::uint64_t request_id);

}  // namespace xtalk::service
