// Request admission control: the service's overload story.
//
// The daemon never rejects analysis work with an error while it is up —
// the PR 4 run governor gives it a better tool. Every admitted request
// carries a RunBudget; when the request queue is deeper than the configured
// soft threshold, admission *clamps* the budget (tighter deadline and/or
// waveform-calc cap, policy forced to kAnytime) so overloaded requests
// finish early with a provably conservative anytime result instead of
// queueing unboundedly or failing. Load sheds itself: the deeper the queue,
// the cheaper each admitted run.
//
// Determinism note: admission changes *budgets*, never inputs — a clamped
// run is exactly the run a one-shot CLI invocation with the same (clamped)
// budget would produce, so the bitwise service-vs-local contract holds for
// truncated results too.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/run_governor.hpp"

namespace xtalk::service {

struct AdmissionConfig {
  /// Queue depth (requests waiting at pickup time) beyond which budgets
  /// are clamped. 0 = clamp whenever anything is waiting.
  std::size_t soft_queue = 8;
  /// Overload clamps; 0 disables the respective clamp. Applied as a min
  /// with the request's own (or the server default) budget.
  double overload_deadline_ms = 0.0;
  std::size_t overload_max_calcs = 50000;
};

/// Thread-safe (executors admit concurrently); all counters are totals
/// since construction.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Admit a request picked up with `queue_depth` requests still waiting.
  /// Merges the server default into zero fields of *budget, then applies
  /// overload clamps when the queue is past the soft threshold. Returns
  /// true when the budget was tightened (the request is "degraded").
  bool admit(std::size_t queue_depth, const util::RunBudget& server_default,
             util::RunBudget* budget);

  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_peak() const {
    return queue_peak_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionConfig config_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> queue_peak_{0};
};

}  // namespace xtalk::service
