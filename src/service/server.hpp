// The long-lived analysis daemon (DESIGN.md §13).
//
// One XtalkServer serves one immutable DesignSession over a socket. The
// threading model is a single poll() event loop that owns ALL socket I/O
// (accept, buffered non-blocking reads/writes, frame extraction) plus N
// executor threads that own the analysis work. Each executor owns one
// long-lived util::ThreadPool, and every connection is pinned to one
// executor at accept time — so an executor's pool ever runs one engine at
// a time (the pool's single-loop contract) while the worker threads warm
// across requests instead of being respawned per run.
//
// Ordering: requests on one connection execute strictly in receive order
// (ECO edits are order-dependent); requests on different connections run
// concurrently when pinned to different executors. Responses travel back
// through a mutex-guarded per-connection outbox; the executor wakes the
// event loop through a self-pipe and the loop flushes when the socket is
// writable.
//
// Overload: every analysis request passes AdmissionController::admit with
// the executor's queue depth — past the soft threshold budgets are clamped
// and the run truncates into a conservative anytime result (never an
// error). Drain (request_stop() or a kShutdown request): the listener
// closes FIRST, already-received requests finish (DrainPolicy::kFinish) or
// soft-cancel into anytime results (kTruncate), outboxes flush, then
// connections close and the threads join.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace xtalk::service {

/// What happens to in-flight and queued requests on drain.
enum class DrainPolicy : std::uint8_t {
  kFinish = 0,    ///< run every received request to completion
  kTruncate = 1,  ///< soft-cancel: anytime truncation at the next checkpoint
};

struct ServiceConfig {
  /// Unix-domain socket path; empty = listen on loopback TCP instead.
  std::string unix_path;
  /// TCP port when unix_path is empty; 0 picks an ephemeral port (read the
  /// chosen one via XtalkServer::port()).
  std::uint16_t tcp_port = 0;
  /// Executor threads (concurrent requests); each owns a ThreadPool.
  std::size_t num_executors = 2;
  /// Worker threads per executor pool (0 = one per hardware thread).
  int pool_threads = 1;
  util::WireLimits wire;
  AdmissionConfig admission;
  /// Server-side budget defaults merged into every request (0 = unlimited).
  util::RunBudget default_budget;
  DrainPolicy drain = DrainPolicy::kFinish;
  /// Slow-loris eviction: a connection with a partial frame inbound or
  /// unflushed responses outbound that makes no byte progress for this long
  /// is treated as dead and closed. 0 disables.
  int stall_timeout_ms = 30000;
  /// During drain, a peer that stops reading its responses is force-closed
  /// after this much write inactivity, so drain can never hang on a dead
  /// reader. 0 disables (drain then waits forever, the pre-hardening
  /// behaviour).
  int drain_flush_timeout_ms = 5000;
  /// Backpressure: stop reading from a connection while its outbox holds at
  /// least this many unsent bytes (resumes when the peer drains it). Bounds
  /// per-connection memory against a pipelining-but-never-reading client.
  std::size_t max_outbox_bytes = 8u << 20;
  /// Crash-only durability: directory for snapshots + the session WAL.
  /// Empty = volatile server (pre-v3 semantics: ECO sessions die with their
  /// connection and a process crash loses everything).
  std::string state_dir;
  /// fsync snapshots and WAL appends (ack-implies-durable). Disable only in
  /// tests where the state dir lives on tmpfs anyway.
  bool state_fsync = true;
  /// How long a detached durable session (its connection died) stays
  /// resumable by token before it is reaped and WAL-closed. 0 = immediately.
  int detached_linger_ms = 30000;
  /// Optional readable-means-stop fd polled by the event loop (the write
  /// end lives in an async-signal-safe self-pipe signal handler). -1 = off.
  int stop_event_fd = -1;
};

class XtalkServer {
 public:
  /// The design session is borrowed and must outlive the server.
  XtalkServer(DesignSession& design, ServiceConfig config);
  ~XtalkServer();

  XtalkServer(const XtalkServer&) = delete;
  XtalkServer& operator=(const XtalkServer&) = delete;

  /// Bind the listener and start the event loop + executors. Throws
  /// util::DiagError(kFileError) if the socket cannot be bound.
  void start();

  /// Begin drain from any thread (idempotent): stop accepting, stop
  /// reading, finish/truncate received work, flush, close.
  void request_stop();

  /// Wait for the drain to complete and all threads to exit.
  void join();

  /// Convenience: request_stop() + join().
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound TCP port (0 for unix-domain servers).
  std::uint16_t port() const { return listener_.port(); }
  const std::string& unix_path() const { return listener_.unix_path(); }

  /// Point-in-time server counters (same data as the kGetStats response).
  StatsMsg stats_snapshot() const;

 private:
  struct Connection {
    std::uint64_t id = 0;
    util::Socket sock;
    std::size_t executor = 0;
    // --- event-loop-only state ---------------------------------------
    std::vector<std::uint8_t> inbuf;   ///< unparsed received bytes
    std::deque<std::vector<std::uint8_t>> ready;  ///< parsed payloads
    bool peer_gone = false;  ///< EOF/error seen; close once work drains
    bool kill = false;       ///< protocol violation; close once flushed
    /// Progress deadlines (slow-loris eviction / drain flush grace). The
    /// event loop samples the buffer watermarks each scan; any change —
    /// bytes received, parsed, enqueued or flushed — counts as progress,
    /// so the timestamps are only ever touched on the event loop thread.
    std::chrono::steady_clock::time_point last_read_progress;
    std::chrono::steady_clock::time_point last_write_progress;
    std::size_t last_in_pending = 0;
    std::size_t last_out_pending = 0;
    // --- cross-thread state ------------------------------------------
    std::atomic<bool> busy{false};  ///< a request is on an executor
    std::mutex out_mutex;
    std::vector<std::uint8_t> outbuf;  ///< encoded frames awaiting send
    std::size_t out_off = 0;           ///< sent prefix of outbuf
    // --- executor-only state (the pinned executor serializes access) --
    std::uint32_t next_eco_id = 1;
    std::map<std::uint32_t, std::unique_ptr<EcoSession>> eco;
  };

  struct Request {
    std::shared_ptr<Connection> conn;
    std::vector<std::uint8_t> payload;
  };

  struct Executor {
    std::thread thread;
    std::unique_ptr<util::ThreadPool> pool;
    util::CancelToken cancel;  ///< requested (soft) on kTruncate drain
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Request> queue;
  };

  void event_loop();
  void executor_loop(Executor& ex);

  // Event-loop helpers.
  void accept_pending();
  void read_connection(const std::shared_ptr<Connection>& conn);
  void parse_frames(const std::shared_ptr<Connection>& conn);
  void dispatch_ready(const std::shared_ptr<Connection>& conn);
  void write_connection(const std::shared_ptr<Connection>& conn);
  bool connection_drained(const std::shared_ptr<Connection>& conn);
  /// True when the connection blew a progress deadline and must be evicted.
  /// Also advances the connection's progress watermarks.
  bool connection_stalled(const std::shared_ptr<Connection>& conn,
                          std::chrono::steady_clock::time_point now,
                          bool stopping);
  /// Answer a kHealth payload directly on the event loop (never queued, so
  /// the probe stays responsive while every executor is busy).
  void respond_health(const std::shared_ptr<Connection>& conn,
                      const std::vector<std::uint8_t>& payload);
  /// Account for the ECO sessions of a dying connection: dropped outright on
  /// a volatile server, detached (resumable by token) on a durable one.
  void reap_connection_sessions(Connection& conn);
  /// Reap detached durable sessions whose linger expired (event loop).
  void reap_detached_sessions();

  // Executor helpers. All run on the connection's pinned executor.
  void handle_request(Executor& ex, const Request& req,
                      std::size_t queue_depth);
  void respond(Connection& conn, MsgType type, std::uint32_t request_id,
               const util::WireWriter& body);
  void respond_error(Connection& conn, std::uint32_t request_id,
                     ErrorCode code, const std::string& message);
  void handle_run_sta(Executor& ex, Connection& conn,
                      std::uint32_t request_id, util::WireReader& r,
                      std::size_t queue_depth);
  void handle_query_endpoints(Executor& ex, Connection& conn,
                              std::uint32_t request_id, util::WireReader& r);
  void handle_query_slack(Executor& ex, Connection& conn,
                          std::uint32_t request_id, util::WireReader& r);
  void handle_eco_open(Executor& ex, Connection& conn,
                       std::uint32_t request_id, util::WireReader& r);
  void handle_eco_edit(Connection& conn, std::uint32_t request_id,
                       util::WireReader& r);
  void handle_eco_resume(Executor& ex, Connection& conn,
                         std::uint32_t request_id, util::WireReader& r);
  void handle_eco_run(Executor& ex, Connection& conn,
                      std::uint32_t request_id, util::WireReader& r,
                      std::size_t queue_depth);
  void handle_eco_close(Connection& conn, std::uint32_t request_id,
                        util::WireReader& r);

  // Durability helpers (no-ops on a volatile server).
  bool durable() const { return !config_.state_dir.empty(); }
  std::string wal_path() const { return config_.state_dir + "/sessions.wal"; }
  /// Load the restart generation, replay + compact the session WAL, warm
  /// the baseline cache. Runs in start() before any thread exists.
  void setup_durability();
  std::uint64_t make_token_locked();
  /// Compact when the WAL carries mostly dead records. Caller holds
  /// durable_mutex_.
  void maybe_compact_locked();
  void compact_wal_locked();

  DesignSession& design_;
  ServiceConfig config_;
  AdmissionController admission_;
  util::Listener listener_;
  util::WakePipe wake_;
  std::thread event_thread_;
  std::vector<std::unique_ptr<Executor>> executors_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> executors_stop_{false};
  bool joined_ = false;
  std::mutex join_mutex_;

  // Event-loop-only connection table.
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t next_executor_ = 0;

  // Stats.
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> request_seq_{0};  ///< trace-path qualification
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> requests_truncated_{0};
  std::atomic<std::uint64_t> eco_open_{0};
  std::atomic<std::uint64_t> eco_reaped_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};

  // Durable session state. Guarded by durable_mutex_ (executors append to
  // the WAL, the event loop reaps detached sessions). The WAL append under
  // this mutex is the ack-implies-durable serialization point: nothing is
  // ever written to a connection before its record is on disk.
  std::mutex durable_mutex_;
  std::map<std::uint64_t, SessionRecord> durable_;  ///< token → record
  /// Tokens whose connection died, with the detach time; a token absent
  /// here but present in durable_ is attached to a live connection.
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> detached_;
  util::WalWriter wal_;
  std::uint64_t token_seq_ = 0;
  std::uint64_t restart_generation_ = 0;
  std::atomic<std::uint64_t> wal_records_{0};
  std::atomic<std::uint64_t> eco_resumed_{0};
};

}  // namespace xtalk::service
