#include "service/admission.hpp"

namespace xtalk::service {

namespace {

/// min() treating 0 as "unlimited" on either side.
double min_limit(double a, double b) {
  if (a <= 0.0) return b;
  if (b <= 0.0) return a;
  return a < b ? a : b;
}

std::size_t min_limit(std::size_t a, std::size_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

}  // namespace

bool AdmissionController::admit(std::size_t queue_depth,
                                const util::RunBudget& server_default,
                                util::RunBudget* budget) {
  admitted_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (queue_depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, queue_depth,
                                            std::memory_order_relaxed)) {
  }

  // Server defaults fill fields the request left unlimited; the request may
  // always ask for *less* than the default.
  budget->deadline_ms = min_limit(budget->deadline_ms, server_default.deadline_ms);
  budget->max_waveform_calcs =
      min_limit(budget->max_waveform_calcs, server_default.max_waveform_calcs);
  budget->soft_memory_bytes =
      min_limit(budget->soft_memory_bytes, server_default.soft_memory_bytes);
  budget->hard_memory_bytes =
      min_limit(budget->hard_memory_bytes, server_default.hard_memory_bytes);

  if (queue_depth <= config_.soft_queue) return false;

  // Overload: tighten toward the clamps and force the anytime policy so the
  // truncation surfaces as a conservative result, never as an error.
  const double clamped_deadline =
      min_limit(budget->deadline_ms, config_.overload_deadline_ms);
  const std::size_t clamped_calcs =
      min_limit(budget->max_waveform_calcs, config_.overload_max_calcs);
  const bool tightened = clamped_deadline != budget->deadline_ms ||
                         clamped_calcs != budget->max_waveform_calcs ||
                         budget->policy != util::BudgetPolicy::kAnytime;
  budget->deadline_ms = clamped_deadline;
  budget->max_waveform_calcs = clamped_calcs;
  budget->policy = util::BudgetPolicy::kAnytime;
  if (tightened) degraded_.fetch_add(1, std::memory_order_relaxed);
  return tightened;
}

}  // namespace xtalk::service
