// Blocking client for the analysis service.
//
// One XtalkClient wraps one connection; every call sends a frame and waits
// for the matching response (the server echoes the request id, which the
// client asserts). A kError response surfaces as a thrown ServiceError
// carrying the protocol error code — the connection itself stays usable,
// matching the server's recoverable-diagnostics contract (only an
// unframeable byte stream closes a connection).
//
// Transport failures are a different species: a TransportError means the
// *connection* is suspect (timed out, reset, desynchronized) and must be
// discarded — a response may still be in flight, so reusing the socket
// would pair the next request with a stale reply. ServiceError → the
// request failed, the connection is fine; TransportError → the connection
// is dead, the request's fate is unknown. service::ResilientClient
// (retry.hpp) builds the reconnect/retry policy on that distinction.
//
// All blocking reads honor set_read_timeout_ms() (satellite: a dead server
// must not hang the CLI), surfacing expiry as TransportError{kTimeout}.
//
// The raw frame helpers (send_raw/recv_frame) exist for the protocol tests,
// which need to send deliberately malformed frames.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/fault_socket.hpp"
#include "util/socket.hpp"
#include "util/wire.hpp"

namespace xtalk::service {

/// A kError response, thrown to the caller.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Why a connection became unusable.
enum class TransportFailure : std::uint8_t {
  kTimeout = 0,         ///< read deadline expired; response fate unknown
  kConnectionLost = 1,  ///< peer reset/EOF/transport error mid-exchange
  kConnectRefused = 2,  ///< connect() itself failed
  kProtocol = 3,        ///< stream desynchronized (bad id/type/prologue)
};

const char* transport_failure_name(TransportFailure f);

/// A transport-level failure, thrown to the caller. The connection must be
/// abandoned after catching one of these.
class TransportError : public std::runtime_error {
 public:
  TransportError(TransportFailure kind, const std::string& message)
      : std::runtime_error(std::string(transport_failure_name(kind)) + ": " +
                           message),
        kind_(kind) {}
  TransportFailure kind() const { return kind_; }

 private:
  TransportFailure kind_;
};

/// One received frame, decoded down to the payload body.
struct FrameView {
  MsgType type = MsgType::kError;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;  ///< full payload incl. prologue

  /// A reader positioned at the body (after the prologue).
  util::WireReader body(const util::WireLimits& limits) const;
};

class XtalkClient {
 public:
  explicit XtalkClient(util::Socket sock, util::WireLimits limits = {});
  explicit XtalkClient(util::FaultSocket sock, util::WireLimits limits = {});

  static XtalkClient connect_unix(const std::string& path,
                                  util::WireLimits limits = {});
  /// `injector` (optional) arms the connection for fault injection, with
  /// `conn` as its schedule filter id; connect-refusal specs fire here.
  static XtalkClient connect_tcp(std::uint16_t port,
                                 util::WireLimits limits = {},
                                 util::SocketFaultInjector* injector = nullptr,
                                 std::int64_t conn = -1);

  /// Deadline for every blocking read, ms; 0 waits forever (default).
  void set_read_timeout_ms(int ms) { read_timeout_ms_ = ms; }
  int read_timeout_ms() const { return read_timeout_ms_; }

  /// Request-id stream control: ResilientClient carries the monotone id
  /// sequence across reconnects so server logs show one coherent stream.
  std::uint32_t next_request_id() const { return next_request_id_; }
  void set_next_request_id(std::uint32_t id) { next_request_id_ = id; }

  // --- typed requests -----------------------------------------------------
  /// Sends kProtocolVersion; a mismatched server answers with a typed
  /// ServiceError{kVersionMismatch}.
  HelloOkMsg hello();
  void ping();
  RunResultMsg run_sta(const RunSpec& spec);
  EndpointsMsg query_endpoints(const RunSpec& spec);
  SlackMsg query_slack(const SlackQueryMsg& query);
  HealthMsg health();
  /// Returns the new session id plus the durable resumption token (token 0
  /// when the server runs without --state-dir).
  EcoOpenedMsg eco_open(const RunSpec& spec);
  /// Re-bind a durable session by token after reconnecting to a (possibly
  /// restarted) server.
  EcoResumedMsg eco_resume(std::uint64_t token);
  /// Returns the number of ops applied (== ops.size() on success).
  /// `batch_seq` sequences the batch for server-side exactly-once dedupe
  /// (0 = unsequenced).
  std::uint32_t eco_edit(std::uint32_t session_id,
                         const std::vector<EcoOp>& ops,
                         std::uint64_t batch_seq = 0);
  RunResultMsg eco_run(std::uint32_t session_id);
  void eco_close(std::uint32_t session_id);
  StatsMsg stats();
  /// Ask the server to drain and exit (kShutdownOk acknowledges).
  void shutdown_server();

  // --- raw access (tests) -------------------------------------------------
  /// Send arbitrary bytes as-is (no framing added).
  void send_raw(const std::vector<std::uint8_t>& bytes);
  /// Send a well-formed frame with an explicit payload.
  void send_frame(MsgType type, std::uint32_t request_id,
                  const util::WireWriter& body);
  /// Receive one frame (blocking, deadline-bounded). Throws TransportError
  /// on timeout/EOF/transport failure and ServiceError never (raw frames
  /// are not interpreted).
  FrameView recv_frame();

  util::Socket& socket() { return sock_.raw(); }
  util::FaultSocket& fault_socket() { return sock_; }
  const util::WireLimits& limits() const { return limits_; }

 private:
  /// Send `body` as `type`, wait for the response, unwrap kError.
  FrameView transact(MsgType request, const util::WireWriter& body,
                     MsgType expected_response);

  util::FaultSocket sock_;
  util::WireLimits limits_;
  std::uint32_t next_request_id_ = 1;
  int read_timeout_ms_ = 0;
};

}  // namespace xtalk::service
