// Blocking client for the analysis service.
//
// One XtalkClient wraps one connection; every call sends a frame and waits
// for the matching response (the server echoes the request id, which the
// client asserts). A kError response surfaces as a thrown ServiceError
// carrying the protocol error code — the connection itself stays usable,
// matching the server's recoverable-diagnostics contract (only an
// unframeable byte stream closes a connection).
//
// The raw frame helpers (send_raw/recv_frame) exist for the protocol tests,
// which need to send deliberately malformed frames.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/socket.hpp"
#include "util/wire.hpp"

namespace xtalk::service {

/// A kError response, thrown to the caller.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One received frame, decoded down to the payload body.
struct FrameView {
  MsgType type = MsgType::kError;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;  ///< full payload incl. prologue

  /// A reader positioned at the body (after the prologue).
  util::WireReader body(const util::WireLimits& limits) const;
};

class XtalkClient {
 public:
  explicit XtalkClient(util::Socket sock, util::WireLimits limits = {});

  static XtalkClient connect_unix(const std::string& path,
                                  util::WireLimits limits = {});
  static XtalkClient connect_tcp(std::uint16_t port,
                                 util::WireLimits limits = {});

  // --- typed requests -----------------------------------------------------
  HelloOkMsg hello();
  void ping();
  RunResultMsg run_sta(const RunSpec& spec);
  EndpointsMsg query_endpoints(const RunSpec& spec);
  SlackMsg query_slack(const SlackQueryMsg& query);
  /// Returns the new session id.
  std::uint32_t eco_open(const RunSpec& spec);
  /// Returns the number of ops applied (== ops.size() on success).
  std::uint32_t eco_edit(std::uint32_t session_id,
                         const std::vector<EcoOp>& ops);
  RunResultMsg eco_run(std::uint32_t session_id);
  void eco_close(std::uint32_t session_id);
  StatsMsg stats();
  /// Ask the server to drain and exit (kShutdownOk acknowledges).
  void shutdown_server();

  // --- raw access (tests) -------------------------------------------------
  /// Send arbitrary bytes as-is (no framing added).
  void send_raw(const std::vector<std::uint8_t>& bytes);
  /// Send a well-formed frame with an explicit payload.
  void send_frame(MsgType type, std::uint32_t request_id,
                  const util::WireWriter& body);
  /// Receive one frame (blocking). Throws util::DiagError on EOF/transport
  /// errors and ServiceError never (raw frames are not interpreted).
  FrameView recv_frame();

  util::Socket& socket() { return sock_; }
  const util::WireLimits& limits() const { return limits_; }

 private:
  /// Send `body` as `type`, wait for the response, unwrap kError.
  FrameView transact(MsgType request, const util::WireWriter& body,
                     MsgType expected_response);

  util::Socket sock_;
  util::WireLimits limits_;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace xtalk::service
