#include "service/session.hpp"

#include <utility>

namespace xtalk::service {

DesignSession::DesignSession(core::Design&& design, std::string name)
    : design_(std::move(design)), name_(std::move(name)) {}

std::shared_ptr<const sta::StaResult> DesignSession::baseline(
    const RunSpec& spec, util::ThreadPool* pool) {
  const std::string key = spec.cache_key();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = baselines_.find(key);
  if (it != baselines_.end()) return it->second;
  // Cache miss: compute under the lock. Queries are expected to share a few
  // specs; serializing the occasional fill is simpler and keeps exactly one
  // engine per spec (two concurrent fills would produce bitwise-identical
  // results anyway, but waste a full run).
  RunSpec numeric = spec;
  numeric.trace_path.clear();  // cache entries are shared; no per-request file
  numeric.collect_metrics = false;
  sta::StaOptions options = numeric.to_options();
  options.pool = pool;
  auto result = std::make_shared<sta::StaResult>(
      sta::run_sta(design_.view(), options));
  baselines_.emplace(key, result);
  return result;
}

std::size_t DesignSession::baselines_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baselines_.size();
}

EcoSession::EcoSession(const DesignSession& base, const RunSpec& run_spec,
                       util::ThreadPool* pool, util::CancelToken* cancel)
    : spec(run_spec) {
  editor =
      std::make_unique<sta::incremental::DesignEditor>(base.design().view());
  sta::StaOptions options = spec.to_options();
  options.pool = pool;
  options.cancel = cancel;
  sta = std::make_unique<sta::incremental::IncrementalSta>(*editor, options);
}

}  // namespace xtalk::service
