#include "service/session.hpp"

#include <chrono>
#include <utility>

namespace xtalk::service {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DesignSession::DesignSession(core::Design&& design, std::string name)
    : design_(std::move(design)), name_(std::move(name)) {}

std::shared_ptr<const sta::StaResult> DesignSession::baseline(
    const RunSpec& spec, util::ThreadPool* pool) {
  const std::string key = spec.cache_key();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = baselines_.find(key);
  if (it != baselines_.end()) return it->second;
  // Cache miss: compute under the lock. Queries are expected to share a few
  // specs; serializing the occasional fill is simpler and keeps exactly one
  // engine per spec (two concurrent fills would produce bitwise-identical
  // results anyway, but waste a full run).
  RunSpec numeric = spec;
  numeric.trace_path.clear();  // cache entries are shared; no per-request file
  numeric.collect_metrics = false;
  sta::StaOptions options = numeric.to_options();
  options.pool = pool;
  const std::shared_ptr<const sta::ScenarioContext> ctx =
      corner_locked(numeric);
  auto result = std::make_shared<sta::StaResult>(
      sta::run_sta(ctx->view(design_.view()), options));
  baselines_.emplace(key, result);
  baseline_specs_.emplace(key, numeric);
  if (!snapshot_path_.empty()) persist_baselines_locked();
  return result;
}

std::size_t DesignSession::baselines_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return baselines_.size();
}

std::shared_ptr<const sta::ScenarioContext> DesignSession::corner(
    const RunSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  return corner_locked(spec);
}

std::size_t DesignSession::corners_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corners_.size();
}

std::shared_ptr<const sta::ScenarioContext> DesignSession::corner_locked(
    const RunSpec& spec) {
  const bool need_nldm = spec.delay_model == sta::DelayModel::kNldm;
  const sta::Scenario scenario = spec.scenario();
  const auto key = std::make_pair(sta::corner_key(scenario), need_nldm);
  auto it = corners_.find(key);
  if (it != corners_.end()) return it->second;
  auto ctx = sta::ScenarioContext::make(design_.view(), scenario, need_nldm);
  corners_.emplace(key, ctx);
  return ctx;
}

void DesignSession::enable_persistence(const std::string& state_dir,
                                       bool do_fsync) {
  const std::string path = state_dir + "/baselines.snap";
  fsync_ = do_fsync;

  // Warm restart: re-derive every baseline the previous generation had
  // memoized. The engine's bitwise determinism makes recomputation exactly
  // as trustworthy as storing result bytes, with none of the skew risk.
  std::vector<RunSpec> warm;
  std::vector<std::uint8_t> payload;
  std::string error;
  const util::PersistStatus st = util::load_snapshot(
      path, kSnapKindBaselines, kSnapVersion, &payload, &error);
  if (st == util::PersistStatus::kOk) {
    util::WireReader r(payload);
    std::uint32_t n = 0;
    if (r.array(&n, /*min_item_bytes=*/48)) {
      warm.resize(n);
      for (RunSpec& spec : warm) {
        if (!spec.decode(r)) {
          warm.clear();  // skewed snapshot: start cold, never half-decoded
          break;
        }
      }
    }
  }
  for (const RunSpec& spec : warm) baseline(spec, nullptr);

  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_path_ = path;
  persist_baselines_locked();
}

std::uint64_t DesignSession::snapshot_age_ms() const {
  const std::int64_t at = last_snapshot_steady_ms_.load(std::memory_order_relaxed);
  if (at < 0) return 0;
  const std::int64_t age = steady_now_ms() - at;
  return age > 0 ? static_cast<std::uint64_t>(age) : 0;
}

void DesignSession::persist_baselines_locked() {
  util::WireWriter w;
  w.array(baseline_specs_.size());
  for (const auto& [key, spec] : baseline_specs_) spec.encode(w);
  std::string error;
  if (util::save_snapshot(snapshot_path_, kSnapKindBaselines, kSnapVersion,
                          w.data(), &error, fsync_) == util::PersistStatus::kOk) {
    last_snapshot_steady_ms_.store(steady_now_ms(), std::memory_order_relaxed);
  }
}

EcoSession::EcoSession(DesignSession& base, const RunSpec& run_spec,
                       util::ThreadPool* pool, util::CancelToken* cancel)
    : spec(run_spec), corner(base.corner(run_spec)) {
  editor = std::make_unique<sta::incremental::DesignEditor>(
      corner->view(base.design().view()));
  sta::StaOptions options = spec.to_options();
  options.pool = pool;
  options.cancel = cancel;
  sta = std::make_unique<sta::incremental::IncrementalSta>(*editor, options);
}

// ---------------------------------------------------------------------------
// Session WAL records
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_wal_open(std::uint64_t token,
                                          const RunSpec& spec) {
  util::WireWriter w;
  w.u64(token);
  spec.encode(w);
  return w.data();
}

std::vector<std::uint8_t> encode_wal_edit(std::uint64_t token,
                                          std::uint64_t batch_seq,
                                          const std::vector<EcoOp>& ops) {
  util::WireWriter w;
  w.u64(token);
  w.u64(batch_seq);
  w.array(ops.size());
  for (const EcoOp& op : ops) op.encode(w);
  return w.data();
}

std::vector<std::uint8_t> encode_wal_close(std::uint64_t token) {
  util::WireWriter w;
  w.u64(token);
  return w.data();
}

std::map<std::uint64_t, SessionRecord> fold_session_wal(
    const std::vector<util::WalRecord>& records) {
  std::map<std::uint64_t, SessionRecord> live;
  for (const util::WalRecord& rec : records) {
    util::WireReader r(rec.payload);
    std::uint64_t token = 0;
    if (!r.u64(&token)) continue;
    switch (static_cast<WalRecordType>(rec.type)) {
      case WalRecordType::kSessionOpen: {
        SessionRecord sr;
        sr.token = token;
        if (!sr.spec.decode(r) || !r.finish()) continue;
        live[token] = std::move(sr);
        break;
      }
      case WalRecordType::kSessionEdit: {
        auto it = live.find(token);
        if (it == live.end()) continue;  // edit for a closed/unknown session
        std::uint64_t batch_seq = 0;
        std::uint32_t n = 0;
        if (!r.u64(&batch_seq) || !r.array(&n, /*min_item_bytes=*/33)) continue;
        std::vector<EcoOp> ops(n);
        bool ok = true;
        for (EcoOp& op : ops) {
          if (!op.decode(r)) {
            ok = false;
            break;
          }
        }
        if (!ok || !r.finish()) continue;
        // Acknowledged batches are strictly sequential; anything else is a
        // duplicate from a pre-compaction overlap and is dropped.
        if (batch_seq != it->second.applied_seq + 1) continue;
        it->second.batches.push_back(std::move(ops));
        it->second.applied_seq = batch_seq;
        break;
      }
      case WalRecordType::kSessionClose:
        live.erase(token);
        break;
      default:
        break;  // future record type: skip, never fail the replay
    }
  }
  return live;
}

std::vector<util::WalRecord> compact_session_wal(
    const std::map<std::uint64_t, SessionRecord>& live) {
  std::vector<util::WalRecord> out;
  for (const auto& [token, sr] : live) {
    util::WalRecord open;
    open.type = static_cast<std::uint16_t>(WalRecordType::kSessionOpen);
    open.payload = encode_wal_open(token, sr.spec);
    out.push_back(std::move(open));
    for (std::size_t i = 0; i < sr.batches.size(); ++i) {
      util::WalRecord edit;
      edit.type = static_cast<std::uint16_t>(WalRecordType::kSessionEdit);
      edit.payload = encode_wal_edit(token, i + 1, sr.batches[i]);
      out.push_back(std::move(edit));
    }
  }
  return out;
}

}  // namespace xtalk::service
