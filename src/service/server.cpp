#include "service/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/diag.hpp"
#include "util/persist.hpp"

namespace xtalk::service {

namespace {

/// Read-chunk size for the buffered receive path.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Poll timeout: bounds how stale the loop's view of stop flags can get.
constexpr int kPollTimeoutMs = 50;

/// Decode the frame length prefix (little-endian u32).
std::uint32_t frame_length(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Apply one validated ECO op to the editor; throws on editor rejection.
/// Shared by the edit handler and the resume-replay path, so a replayed
/// session is rebuilt by exactly the code that built it the first time.
void apply_eco_op(sta::incremental::DesignEditor& editor, const EcoOp& op) {
  switch (op.kind) {
    case EcoOp::Kind::kResizeGate:
      editor.resize_gate(op.gate, op.value_a);
      break;
    case EcoOp::Kind::kSetWireCap:
      editor.set_wire_cap(op.net_a, op.value_a);
      break;
    case EcoOp::Kind::kSetCoupling:
      editor.set_coupling(op.net_a, op.net_b, op.value_a);
      break;
    case EcoOp::Kind::kRemoveCoupling:
      editor.remove_coupling(op.net_a, op.net_b);
      break;
    case EcoOp::Kind::kSetWireRc:
      editor.set_wire_rc(op.net_a, netlist::PinRef{op.gate, op.pin},
                         op.value_a, op.value_b);
      break;
    case EcoOp::Kind::kRetargetSink:
      editor.retarget_sink(op.gate, op.pin, op.net_a, op.value_a, op.value_b);
      break;
  }
}

}  // namespace

XtalkServer::XtalkServer(DesignSession& design, ServiceConfig config)
    : design_(design),
      config_(std::move(config)),
      admission_(config_.admission) {}

XtalkServer::~XtalkServer() { stop(); }

void XtalkServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  // A dead client must never kill the process: writes race peer closes by
  // design (MSG_NOSIGNAL covers sockets, this covers everything else).
  std::signal(SIGPIPE, SIG_IGN);
  setup_durability();
  listener_ = config_.unix_path.empty()
                  ? util::Listener::tcp_loopback(config_.tcp_port)
                  : util::Listener::unix_domain(config_.unix_path);
  start_time_ = std::chrono::steady_clock::now();
  const std::size_t n_exec = std::max<std::size_t>(1, config_.num_executors);
  executors_.reserve(n_exec);
  for (std::size_t i = 0; i < n_exec; ++i) {
    auto ex = std::make_unique<Executor>();
    ex->pool = std::make_unique<util::ThreadPool>(
        util::ThreadPool::resolve_threads(config_.pool_threads));
    executors_.push_back(std::move(ex));
  }
  running_.store(true, std::memory_order_release);
  for (auto& ex : executors_) {
    ex->thread = std::thread([this, e = ex.get()] { executor_loop(*e); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
}

void XtalkServer::request_stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (config_.drain == DrainPolicy::kTruncate) {
    // Soft-cancel: in-flight and queued runs truncate at the next governor
    // checkpoint into conservative anytime results. The tokens stay
    // requested for the rest of the drain (executors skip the reset).
    for (auto& ex : executors_) ex->cancel.request(/*hard=*/false);
  }
  wake_.notify();
}

void XtalkServer::join() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (event_thread_.joinable()) event_thread_.join();
  executors_stop_.store(true, std::memory_order_release);
  for (auto& ex : executors_) {
    {
      std::lock_guard<std::mutex> qlock(ex->mutex);
    }
    ex->cv.notify_all();
    if (ex->thread.joinable()) ex->thread.join();
  }
  executors_.clear();
  connections_.clear();
  running_.store(false, std::memory_order_release);
  joined_ = true;
}

void XtalkServer::stop() {
  if (!running_.load(std::memory_order_acquire) && !event_thread_.joinable())
    return;
  request_stop();
  join();
}

void XtalkServer::setup_durability() {
  if (!durable()) return;
  // Best-effort create; an unusable dir surfaces as kIoError below.
  ::mkdir(config_.state_dir.c_str(), 0755);

  // Restart generation: load, bump, store. Tokens embed the generation, so
  // a token minted before any number of restarts can never collide with a
  // fresh one.
  const std::string gen_path = config_.state_dir + "/generation.snap";
  std::vector<std::uint8_t> payload;
  std::string error;
  std::uint64_t gen = 0;
  if (util::load_snapshot(gen_path, kSnapKindGeneration, kSnapVersion,
                          &payload, &error) == util::PersistStatus::kOk) {
    util::WireReader r(payload);
    if (!r.u64(&gen) || !r.finish()) gen = 0;
  }
  restart_generation_ = gen + 1;
  util::WireWriter w;
  w.u64(restart_generation_);
  util::save_snapshot(gen_path, kSnapKindGeneration, kSnapVersion, w.data(),
                      &error, config_.state_fsync);

  // Replay the session WAL: every session the previous generation had
  // acknowledged comes back, detached, resumable by token. A torn tail is
  // the expected crash shape (truncated); full corruption degrades to a
  // cold start rather than refusing to serve.
  const util::WalReplay replay = util::replay_wal(wal_path());
  if (replay.status == util::PersistStatus::kOk) {
    durable_ = fold_session_wal(replay.records);
  }
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [token, rec] : durable_) detached_.emplace(token, now);

  // Compact at boot: the rewritten log carries exactly the live sessions,
  // dropping closed-session records and any torn tail physically.
  compact_wal_locked();

  // Re-warm the memoized baselines (and keep snapshotting them from here).
  design_.enable_persistence(config_.state_dir, config_.state_fsync);
}

std::uint64_t XtalkServer::make_token_locked() {
  return (restart_generation_ << 32) | ++token_seq_;
}

void XtalkServer::maybe_compact_locked() {
  const std::uint64_t records = wal_records_.load(std::memory_order_relaxed);
  std::uint64_t live = 0;
  for (const auto& [token, rec] : durable_) live += 1 + rec.batches.size();
  // Compact when the log is mostly dead weight: either every session closed
  // (truncate to empty) or the record count is far past what the live set
  // needs. The +64 floor keeps steady-state churn from compacting per close.
  const bool all_closed = durable_.empty() && records > 0;
  if (!all_closed && records <= 2 * live + 64) return;
  compact_wal_locked();
}

void XtalkServer::compact_wal_locked() {
  std::string error;
  wal_.close();
  const std::vector<util::WalRecord> records = compact_session_wal(durable_);
  util::WalWriter::rewrite(wal_path(), records, config_.state_fsync, &error);
  // Reopen for appends at the end of whatever is actually on disk (the
  // rewrite may have failed; appending after a replayed valid prefix is
  // correct either way).
  const util::WalReplay replay = util::replay_wal(wal_path());
  wal_.open(wal_path(), replay.valid_bytes, config_.state_fsync, &error);
  wal_records_.store(replay.records.size(), std::memory_order_relaxed);
}

StatsMsg XtalkServer::stats_snapshot() const {
  StatsMsg s;
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.requests_truncated = requests_truncated_.load(std::memory_order_relaxed);
  s.requests_degraded_admission = admission_.degraded();
  s.eco_sessions_open = eco_open_.load(std::memory_order_relaxed);
  s.eco_sessions_reaped = eco_reaped_.load(std::memory_order_relaxed);
  s.connections_evicted = evicted_.load(std::memory_order_relaxed);
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.queue_peak = admission_.queue_peak();
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  s.restart_generation = restart_generation_;
  s.snapshot_age_ms = design_.snapshot_age_ms();
  s.wal_records = wal_records_.load(std::memory_order_relaxed);
  s.eco_sessions_resumed = eco_resumed_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void XtalkServer::event_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listener_.valid()) {
      // Drain step 1: stop accepting BEFORE touching existing work, so a
      // restarting supervisor can bind the successor socket while we finish.
      listener_.close();
    }

    // Close connections that have fully drained (no pending work, flushed
    // outbox). During normal operation only dead peers are reaped; during
    // drain this is how the server winds down to zero connections. A peer
    // that blew a progress deadline (slow-loris, or refusing to read its
    // responses during drain) is declared gone first, so a stalled socket
    // can never pin the server — drain always terminates.
    const auto now = std::chrono::steady_clock::now();
    for (auto it = connections_.begin(); it != connections_.end();) {
      const auto& conn = it->second;
      if (!conn->peer_gone && !conn->kill &&
          connection_stalled(conn, now, stopping)) {
        evicted_.fetch_add(1, std::memory_order_relaxed);
        conn->peer_gone = true;
      }
      const bool close_now =
          (conn->kill || conn->peer_gone || stopping) &&
          connection_drained(conn);
      if (close_now) {
        reap_connection_sessions(*conn);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (stopping && connections_.empty()) return;

    reap_detached_sessions();

    fds.clear();
    polled.clear();
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    const bool has_stop_fd = config_.stop_event_fd >= 0;
    if (has_stop_fd) fds.push_back({config_.stop_event_fd, POLLIN, 0});
    if (listener_.valid()) fds.push_back({listener_.fd(), POLLIN, 0});
    for (auto& [id, conn] : connections_) {
      short events = 0;
      std::size_t pending_out = 0;
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        pending_out = conn->outbuf.size() - conn->out_off;
      }
      if (pending_out > 0) events |= POLLOUT;
      // Stop reading once draining/killing: received-but-unread bytes are
      // not "in-flight requests", and resync after a kill is impossible.
      // Backpressure: also stop reading while the outbox is over budget —
      // the peer must drain responses before pipelining more requests.
      if (!stopping && !conn->kill && !conn->peer_gone &&
          pending_out < config_.max_outbox_bytes) {
        events |= POLLIN;
      }
      if (events == 0) continue;
      fds.push_back({conn->sock.fd(), events, 0});
      polled.push_back(conn);
    }

    ::poll(fds.data(), fds.size(), kPollTimeoutMs);

    std::size_t idx = 0;
    if (fds[idx].revents & POLLIN) wake_.drain();
    ++idx;
    if (has_stop_fd) {
      if (fds[idx].revents & POLLIN) {
        // Signal-handler self-pipe became readable: drain it (EINTR-safe —
        // more signals may land mid-read) and begin a graceful drain.
        char buf[64];
        for (;;) {
          const ssize_t got = ::read(config_.stop_event_fd, buf, sizeof buf);
          if (got > 0 || (got < 0 && errno == EINTR)) continue;
          break;
        }
        request_stop();
      }
      ++idx;
    }
    if (listener_.valid()) {
      if (fds[idx].revents & POLLIN) accept_pending();
      ++idx;
    }
    for (std::size_t c = 0; c < polled.size(); ++c, ++idx) {
      const auto& conn = polled[c];
      const short re = fds[idx].revents;
      if (re & (POLLERR | POLLNVAL)) conn->peer_gone = true;
      if (re & (POLLIN | POLLHUP)) read_connection(conn);
      if (re & POLLOUT) write_connection(conn);
    }

    // Dispatch outside the poll-result walk: a response enqueued by an
    // executor between poll() and here may have freed a connection to take
    // its next pipelined request.
    for (auto& [id, conn] : connections_) dispatch_ready(conn);
  }
}

void XtalkServer::accept_pending() {
  for (;;) {
    util::Socket sock = listener_.accept_nonblocking();
    if (!sock.valid()) return;
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    conn->executor = next_executor_++ % executors_.size();
    conn->last_read_progress = std::chrono::steady_clock::now();
    conn->last_write_progress = conn->last_read_progress;
    connections_.emplace(conn->id, conn);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void XtalkServer::read_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->kill || conn->peer_gone) return;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    bool would_block = false;
    const std::ptrdiff_t got =
        conn->sock.recv_some(chunk, sizeof chunk, &would_block);
    if (got > 0) {
      conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + got);
      bytes_in_.fetch_add(static_cast<std::uint64_t>(got),
                          std::memory_order_relaxed);
      continue;
    }
    if (got < 0 && would_block) break;
    conn->peer_gone = true;  // orderly EOF or hard error
    break;
  }
  parse_frames(conn);
}

void XtalkServer::parse_frames(const std::shared_ptr<Connection>& conn) {
  std::size_t off = 0;
  while (conn->inbuf.size() - off >= kFrameHeaderBytes) {
    const std::uint32_t len = frame_length(conn->inbuf.data() + off);
    if (len > config_.wire.max_frame_bytes) {
      // Unframeable stream: no way to know where the next frame starts.
      // Best effort: ship an error the client may still read, then close.
      util::WireWriter body;
      ErrorMsg err{ErrorCode::kMalformedFrame,
                   "frame length " + std::to_string(len) +
                       " exceeds limit " +
                       std::to_string(config_.wire.max_frame_bytes)};
      err.encode(body);
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        auto frame = make_frame(MsgType::kError, 0, body);
        conn->outbuf.insert(conn->outbuf.end(), frame.begin(), frame.end());
      }
      conn->kill = true;
      conn->inbuf.clear();
      return;
    }
    if (conn->inbuf.size() - off < kFrameHeaderBytes + len) break;
    const std::uint8_t* payload = conn->inbuf.data() + off + kFrameHeaderBytes;
    if (len >= 1 && payload[0] == static_cast<std::uint8_t>(MsgType::kHealth)) {
      // Health never queues behind analysis work: a load balancer probing a
      // saturated server needs the truthful "I'm clamping" answer now, not
      // after the queue it is asking about.
      respond_health(conn, std::vector<std::uint8_t>(payload, payload + len));
    } else {
      conn->ready.emplace_back(payload, payload + len);
    }
    off += kFrameHeaderBytes + len;
  }
  if (off > 0) conn->inbuf.erase(conn->inbuf.begin(), conn->inbuf.begin() + off);
}

void XtalkServer::respond_health(const std::shared_ptr<Connection>& conn,
                                 const std::vector<std::uint8_t>& payload) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  util::WireReader r(payload.data(), payload.size(), config_.wire);
  MsgType type;
  std::uint32_t request_id = 0;
  if (!read_prologue(r, &type, &request_id) || !r.finish()) {
    respond_error(*conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  HealthMsg m;
  m.accepting = !stopping_.load(std::memory_order_acquire);
  m.connections = static_cast<std::uint64_t>(connections_.size());
  std::uint64_t depth = 0;
  std::uint64_t outbox = 0;
  for (const auto& [id, other] : connections_) {
    depth += static_cast<std::uint64_t>(other->ready.size());
    if (other->busy.load(std::memory_order_acquire)) ++depth;
    std::lock_guard<std::mutex> lock(other->out_mutex);
    outbox +=
        static_cast<std::uint64_t>(other->outbuf.size() - other->out_off);
  }
  m.queue_depth = depth;
  m.soft_queue_limit =
      static_cast<std::uint64_t>(config_.admission.soft_queue);
  m.clamping = m.soft_queue_limit > 0 && depth >= m.soft_queue_limit;
  m.eco_sessions_open = eco_open_.load(std::memory_order_relaxed);
  m.outbox_bytes = outbox;
  m.restart_generation = restart_generation_;
  m.snapshot_age_ms = design_.snapshot_age_ms();
  m.wal_records = wal_records_.load(std::memory_order_relaxed);
  util::WireWriter body;
  m.encode(body);
  respond(*conn, MsgType::kHealthOk, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::dispatch_ready(const std::shared_ptr<Connection>& conn) {
  // One request per connection in flight: ECO edits are order-dependent, so
  // pipelined requests execute strictly in receive order.
  if (conn->kill) return;
  if (conn->ready.empty()) return;
  if (conn->busy.load(std::memory_order_acquire)) return;
  conn->busy.store(true, std::memory_order_release);
  Request req;
  req.conn = conn;
  req.payload = std::move(conn->ready.front());
  conn->ready.pop_front();
  Executor& ex = *executors_[conn->executor];
  {
    std::lock_guard<std::mutex> lock(ex.mutex);
    ex.queue.push_back(std::move(req));
  }
  ex.cv.notify_one();
}

void XtalkServer::write_connection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  while (conn->out_off < conn->outbuf.size()) {
    bool would_block = false;
    const std::ptrdiff_t sent = conn->sock.send_some(
        conn->outbuf.data() + conn->out_off,
        conn->outbuf.size() - conn->out_off, &would_block);
    if (sent > 0) {
      conn->out_off += static_cast<std::size_t>(sent);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(sent),
                           std::memory_order_relaxed);
      continue;
    }
    if (sent < 0 && would_block) break;
    conn->peer_gone = true;  // peer closed before reading its responses
    conn->out_off = conn->outbuf.size();
    break;
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
  }
}

bool XtalkServer::connection_stalled(const std::shared_ptr<Connection>& conn,
                                     std::chrono::steady_clock::time_point now,
                                     bool stopping) {
  std::size_t pending_out = 0;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    pending_out = conn->outbuf.size() - conn->out_off;
  }
  const std::size_t pending_in = conn->inbuf.size();
  if (pending_out != conn->last_out_pending) {
    conn->last_out_pending = pending_out;
    conn->last_write_progress = now;
  }
  if (pending_in != conn->last_in_pending) {
    conn->last_in_pending = pending_in;
    conn->last_read_progress = now;
  }
  const int limit_ms =
      stopping ? config_.drain_flush_timeout_ms : config_.stall_timeout_ms;
  if (limit_ms <= 0) return false;
  const auto limit = std::chrono::milliseconds(limit_ms);
  // An unflushed outbox with no send progress: the peer stopped reading.
  if (pending_out > 0 && now - conn->last_write_progress > limit) return true;
  // A partial frame with no receive progress: a torn or slow-loris sender.
  // (Idle connections with an empty inbuf are fine — keepalive is free.)
  if (!stopping && pending_in > 0 && now - conn->last_read_progress > limit) {
    return true;
  }
  return false;
}

void XtalkServer::reap_connection_sessions(Connection& conn) {
  // Volatile server: the connection owns its ECO sessions; when it dies
  // before kEcoClose the sessions die with it (the recovery contract clients
  // rely on: a lost connection always means a lost session, so journal
  // replay onto a fresh session can never double-apply edits). Durable
  // server: the live engine object still dies, but the WAL record detaches
  // instead — resumable by token until the linger expires, exactly-once
  // guaranteed by batch_seq dedupe rather than by session loss. Only runs
  // once the connection is drained (not busy), so the pinned executor is
  // done touching conn.eco.
  const std::uint64_t orphans = static_cast<std::uint64_t>(conn.eco.size());
  if (orphans == 0) return;
  if (durable()) {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(durable_mutex_);
    for (const auto& [id, session] : conn.eco) {
      if (session->token != 0 && durable_.count(session->token) != 0) {
        detached_.emplace(session->token, now);
      }
    }
    conn.eco.clear();
    eco_open_.fetch_sub(orphans, std::memory_order_relaxed);
    return;  // reaped counts when the linger expires, not at detach
  }
  conn.eco.clear();
  eco_open_.fetch_sub(orphans, std::memory_order_relaxed);
  eco_reaped_.fetch_add(orphans, std::memory_order_relaxed);
}

void XtalkServer::reap_detached_sessions() {
  if (!durable()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto linger = std::chrono::milliseconds(
      config_.detached_linger_ms < 0 ? 0 : config_.detached_linger_ms);
  std::lock_guard<std::mutex> lock(durable_mutex_);
  bool changed = false;
  for (auto it = detached_.begin(); it != detached_.end();) {
    if (now - it->second < linger) {
      ++it;
      continue;
    }
    std::string error;
    wal_.append(static_cast<std::uint16_t>(WalRecordType::kSessionClose),
                encode_wal_close(it->first), &error);
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    durable_.erase(it->first);
    it = detached_.erase(it);
    eco_reaped_.fetch_add(1, std::memory_order_relaxed);
    changed = true;
  }
  if (changed) maybe_compact_locked();
}

bool XtalkServer::connection_drained(const std::shared_ptr<Connection>& conn) {
  if (conn->busy.load(std::memory_order_acquire)) return false;
  if (!conn->ready.empty() && !conn->kill && !conn->peer_gone) return false;
  if (conn->peer_gone) return true;  // nobody left to flush to
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  return conn->out_off >= conn->outbuf.size();
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

void XtalkServer::executor_loop(Executor& ex) {
  for (;;) {
    Request req;
    std::size_t queue_depth = 0;
    {
      std::unique_lock<std::mutex> lock(ex.mutex);
      ex.cv.wait(lock, [&] {
        return !ex.queue.empty() ||
               executors_stop_.load(std::memory_order_acquire);
      });
      if (ex.queue.empty()) return;  // stop requested and queue drained
      req = std::move(ex.queue.front());
      ex.queue.pop_front();
      queue_depth = ex.queue.size();
    }
    handle_request(ex, req, queue_depth);
    req.conn->busy.store(false, std::memory_order_release);
    wake_.notify();  // flush the response / dispatch the next request
  }
}

void XtalkServer::respond(Connection& conn, MsgType type,
                          std::uint32_t request_id,
                          const util::WireWriter& body) {
  auto frame = make_frame(type, request_id, body);
  std::lock_guard<std::mutex> lock(conn.out_mutex);
  conn.outbuf.insert(conn.outbuf.end(), frame.begin(), frame.end());
}

void XtalkServer::respond_error(Connection& conn, std::uint32_t request_id,
                                ErrorCode code, const std::string& message) {
  util::WireWriter body;
  ErrorMsg{code, message}.encode(body);
  respond(conn, MsgType::kError, request_id, body);
  requests_error_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_request(Executor& ex, const Request& req,
                                 std::size_t queue_depth) {
  Connection& conn = *req.conn;
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  util::WireReader r(req.payload.data(), req.payload.size(), config_.wire);
  MsgType type;
  std::uint32_t request_id = 0;
  if (!read_prologue(r, &type, &request_id)) {
    respond_error(conn, 0, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  try {
    switch (type) {
      case MsgType::kHello: {
        // Version 1 clients sent an empty hello body; anything else carries
        // the client's wire version. Rejecting a mismatch here — before any
        // other request type is decoded — is what keeps "undefined frame
        // decoding" off the table for old clients.
        HelloMsg hello;
        if (r.remaining() == 0) {
          hello.protocol_version = 1;
        } else if (!hello.decode(r) || !r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        if (hello.protocol_version != kProtocolVersion) {
          respond_error(conn, request_id, ErrorCode::kVersionMismatch,
                        "client speaks protocol version " +
                            std::to_string(hello.protocol_version) +
                            ", server requires " +
                            std::to_string(kProtocolVersion));
          return;
        }
        const sta::DesignView view = design_.view();
        HelloOkMsg m;
        m.design_name = design_.name();
        m.num_gates = view.netlist->num_gates();
        m.num_nets = view.netlist->num_nets();
        m.num_levels = view.dag->num_levels;
        util::WireWriter body;
        m.encode(body);
        respond(conn, MsgType::kHelloOk, request_id, body);
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kPing: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        respond(conn, MsgType::kPong, request_id, util::WireWriter{});
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kRunSta:
        handle_run_sta(ex, conn, request_id, r, queue_depth);
        return;
      case MsgType::kQueryEndpoints:
        handle_query_endpoints(ex, conn, request_id, r);
        return;
      case MsgType::kQuerySlack:
        handle_query_slack(ex, conn, request_id, r);
        return;
      case MsgType::kEcoOpen:
        handle_eco_open(ex, conn, request_id, r);
        return;
      case MsgType::kEcoEdit:
        handle_eco_edit(conn, request_id, r);
        return;
      case MsgType::kEcoResume:
        handle_eco_resume(ex, conn, request_id, r);
        return;
      case MsgType::kEcoRun:
        handle_eco_run(ex, conn, request_id, r, queue_depth);
        return;
      case MsgType::kEcoClose:
        handle_eco_close(conn, request_id, r);
        return;
      case MsgType::kGetStats: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        util::WireWriter body;
        stats_snapshot().encode(body);
        respond(conn, MsgType::kStats, request_id, body);
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kShutdown: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        respond(conn, MsgType::kShutdownOk, request_id, util::WireWriter{});
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        request_stop();
        return;
      }
      default:
        respond_error(conn, request_id, ErrorCode::kUnknownType,
                      "unknown request type " +
                          std::to_string(static_cast<unsigned>(type)));
        return;
    }
  } catch (const std::exception& e) {
    respond_error(conn, request_id, ErrorCode::kInternal, e.what());
  }
}

void XtalkServer::handle_run_sta(Executor& ex, Connection& conn,
                                 std::uint32_t request_id, util::WireReader& r,
                                 std::size_t queue_depth) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  sta::StaOptions options = spec.to_options();
  options.pool = ex.pool.get();
  admission_.admit(queue_depth, config_.default_budget, &options.budget);
  if (!stopping_.load(std::memory_order_acquire)) ex.cancel.reset();
  options.cancel = &ex.cancel;
  if (!options.trace_path.empty()) {
    options.trace_path = qualified_trace_path(
        options.trace_path,
        request_seq_.fetch_add(1, std::memory_order_relaxed));
  }
  const sta::StaResult result = sta::run_sta(design_.view(), options);
  RunResultMsg m = RunResultMsg::from_result(result);
  m.trace_path = options.trace_path;
  if (m.budget_exhausted)
    requests_truncated_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kRunResult, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_query_endpoints(Executor& ex, Connection& conn,
                                         std::uint32_t request_id,
                                         util::WireReader& r) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto result = design_.baseline(spec, ex.pool.get());
  EndpointsMsg m;
  m.longest_path_delay = result->longest_path_delay;
  m.critical = {result->critical.net, result->critical.rising,
                result->critical.arrival};
  m.endpoints.reserve(result->endpoints.size());
  for (const sta::EndpointArrival& e : result->endpoints) {
    m.endpoints.push_back({e.net, e.rising, e.arrival});
  }
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kEndpoints, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_query_slack(Executor& ex, Connection& conn,
                                     std::uint32_t request_id,
                                     util::WireReader& r) {
  SlackQueryMsg q;
  if (!q.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  // Expand the scenario list into one RunSpec per scenario (empty list =
  // the base spec alone). Each baseline is memoized per scenario key, so
  // repeated queries only pay lookups.
  std::vector<RunSpec> specs;
  if (q.scenarios.empty()) {
    specs.push_back(q.spec);
  } else {
    specs.reserve(q.scenarios.size());
    for (const WireScenario& s : q.scenarios) {
      RunSpec spec = q.spec;
      spec.scenario_name = s.name;
      spec.vdd_scale = s.vdd_scale;
      spec.temperature_c = s.temperature_c;
      spec.coupling_derate = s.coupling_derate;
      if (s.override_mode) spec.mode = static_cast<sta::AnalysisMode>(s.mode);
      specs.push_back(std::move(spec));
    }
  }
  // Worst (minimum) slack over all scenarios; strict < keeps the first
  // scenario on exact ties, so the answer never depends on list order
  // tricks.
  SlackMsg m;
  for (const RunSpec& spec : specs) {
    auto result = design_.baseline(spec, ex.pool.get());
    for (const sta::EndpointArrival& e : result->endpoints) {
      if (e.net != q.net || e.rising != q.rising) continue;
      const double slack = q.required_time - e.arrival;
      if (!m.valid || slack < m.slack) {
        m.valid = true;
        m.arrival = e.arrival;
        m.slack = slack;
        m.worst_scenario = spec.scenario_name;
      }
      break;
    }
  }
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kSlack, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_open(Executor& ex, Connection& conn,
                                  std::uint32_t request_id,
                                  util::WireReader& r) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto session =
      std::make_unique<EcoSession>(design_, spec, ex.pool.get(), &ex.cancel);
  if (durable()) {
    // Ack-implies-durable: the open record is on disk (fsynced) before the
    // EcoOpened frame exists. A WAL failure means no session — the client
    // gets a typed error instead of a session that would silently vanish.
    std::lock_guard<std::mutex> lock(durable_mutex_);
    const std::uint64_t token = make_token_locked();
    std::string error;
    if (wal_.append(static_cast<std::uint16_t>(WalRecordType::kSessionOpen),
                    encode_wal_open(token, spec),
                    &error) != util::PersistStatus::kOk) {
      respond_error(conn, request_id, ErrorCode::kInternal,
                    "session WAL append failed: " + error);
      return;
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    SessionRecord rec;
    rec.token = token;
    rec.spec = spec;
    durable_.emplace(token, std::move(rec));
    session->token = token;
  }
  const std::uint32_t id = conn.next_eco_id++;
  EcoOpenedMsg opened;
  opened.session_id = id;
  opened.token = session->token;
  conn.eco.emplace(id, std::move(session));
  eco_open_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  opened.encode(body);
  respond(conn, MsgType::kEcoOpened, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_resume(Executor& ex, Connection& conn,
                                    std::uint32_t request_id,
                                    util::WireReader& r) {
  EcoResumeMsg msg;
  if (!msg.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  if (!durable()) {
    respond_error(conn, request_id, ErrorCode::kBadRequest,
                  "server runs without --state-dir; sessions are volatile");
    return;
  }
  SessionRecord rec;
  {
    std::lock_guard<std::mutex> lock(durable_mutex_);
    auto it = durable_.find(msg.token);
    if (it == durable_.end()) {
      respond_error(conn, request_id, ErrorCode::kUnknownSession,
                    "no durable session for this token (closed, reaped, or "
                    "never acknowledged)");
      return;
    }
    if (detached_.erase(msg.token) == 0) {
      // Still bound to a live connection (perhaps one whose death the event
      // loop has not yet observed). Refusing keeps two connections from
      // racing on one engine; the client falls back to a fresh session.
      respond_error(conn, request_id, ErrorCode::kBadRequest,
                    "session is attached to a live connection");
      return;
    }
    rec = it->second;  // replay from a copy, outside the lock
  }
  // Rebuild the live engine by deterministic replay of acknowledged batches
  // — the server-side mirror of the client's journal replay.
  auto session =
      std::make_unique<EcoSession>(design_, rec.spec, ex.pool.get(), &ex.cancel);
  try {
    for (const std::vector<EcoOp>& batch : rec.batches) {
      for (const EcoOp& op : batch) apply_eco_op(*session->editor, op);
    }
  } catch (const std::exception& e) {
    // Acknowledged edits applied cleanly once; failing to re-apply means the
    // design changed under us. Put the record back and report.
    std::lock_guard<std::mutex> lock(durable_mutex_);
    detached_.emplace(msg.token, std::chrono::steady_clock::now());
    respond_error(conn, request_id, ErrorCode::kInternal,
                  std::string("session replay failed: ") + e.what());
    return;
  }
  session->token = msg.token;
  session->applied_seq = rec.applied_seq;
  const std::uint32_t id = conn.next_eco_id++;
  EcoResumedMsg resumed;
  resumed.session_id = id;
  resumed.token = msg.token;
  resumed.applied_seq = rec.applied_seq;
  conn.eco.emplace(id, std::move(session));
  eco_open_.fetch_add(1, std::memory_order_relaxed);
  eco_resumed_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  resumed.encode(body);
  respond(conn, MsgType::kEcoResumed, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_edit(Connection& conn, std::uint32_t request_id,
                                  util::WireReader& r) {
  EcoEditMsg msg;
  if (!msg.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto it = conn.eco.find(msg.session_id);
  if (it == conn.eco.end()) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(msg.session_id) +
                      " is not open on this connection");
    return;
  }
  EcoSession& session = *it->second;
  if (msg.batch_seq != 0) {
    if (msg.batch_seq <= session.applied_seq) {
      // A replayed batch the session already holds (the ack was lost, not
      // the append): acknowledge without re-applying — exactly-once.
      util::WireWriter body;
      body.u32(static_cast<std::uint32_t>(msg.ops.size()));
      respond(conn, MsgType::kEcoEditOk, request_id, body);
      requests_ok_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (msg.batch_seq != session.applied_seq + 1) {
      respond_error(conn, request_id, ErrorCode::kBadRequest,
                    "batch_seq " + std::to_string(msg.batch_seq) +
                        " skips ahead of applied_seq " +
                        std::to_string(session.applied_seq));
      return;
    }
  }
  sta::incremental::DesignEditor& editor = *session.editor;
  const std::size_t num_gates = editor.netlist().num_gates();
  const std::size_t num_nets = editor.netlist().num_nets();
  std::uint32_t applied = 0;
  for (const EcoOp& op : msg.ops) {
    // Validate ids up front so a bad op surfaces as kBadRequest, not as an
    // editor exception. Edits already applied in this batch stay applied
    // (the response reports the applied count).
    const bool needs_gate = op.kind == EcoOp::Kind::kResizeGate ||
                            op.kind == EcoOp::Kind::kSetWireRc ||
                            op.kind == EcoOp::Kind::kRetargetSink;
    const bool needs_net_b = op.kind == EcoOp::Kind::kSetCoupling ||
                             op.kind == EcoOp::Kind::kRemoveCoupling;
    if ((needs_gate && op.gate >= num_gates) ||
        (op.kind != EcoOp::Kind::kResizeGate && op.net_a >= num_nets) ||
        (needs_net_b && op.net_b >= num_nets)) {
      respond_error(conn, request_id, ErrorCode::kBadRequest,
                    "ECO op references an id outside the design (applied " +
                        std::to_string(applied) + " of " +
                        std::to_string(msg.ops.size()) + ")");
      return;
    }
    try {
      apply_eco_op(editor, op);
    } catch (const std::exception& e) {
      respond_error(conn, request_id, ErrorCode::kEditRejected,
                    std::string(e.what()) + " (applied " +
                        std::to_string(applied) + " of " +
                        std::to_string(msg.ops.size()) + ")");
      return;
    }
    ++applied;
  }
  const std::uint64_t seq =
      msg.batch_seq != 0 ? msg.batch_seq : session.applied_seq + 1;
  if (durable() && session.token != 0) {
    // Ack-implies-durable: the batch is WAL-appended and fsynced BEFORE the
    // ack frame exists. On append failure the client gets kInternal — its
    // retry layer poisons the handle and rebuilds from its own journal, so
    // server memory holding an unacknowledged batch is harmless.
    std::lock_guard<std::mutex> lock(durable_mutex_);
    std::string error;
    if (wal_.append(static_cast<std::uint16_t>(WalRecordType::kSessionEdit),
                    encode_wal_edit(session.token, seq, msg.ops),
                    &error) != util::PersistStatus::kOk) {
      respond_error(conn, request_id, ErrorCode::kInternal,
                    "session WAL append failed: " + error);
      return;
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    auto dit = durable_.find(session.token);
    if (dit != durable_.end()) {
      dit->second.batches.push_back(msg.ops);
      dit->second.applied_seq = seq;
    }
  }
  session.applied_seq = seq;
  // Seeded kill site: durable but unacknowledged. The client never saw an
  // ack, yet after restart+resume the batch is there — its sequenced replay
  // dedupes instead of double-applying.
  util::crash_point_hit(util::CrashPoint::kWalAfterAppend);
  util::WireWriter body;
  body.u32(applied);
  respond(conn, MsgType::kEcoEditOk, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_run(Executor& ex, Connection& conn,
                                 std::uint32_t request_id, util::WireReader& r,
                                 std::size_t queue_depth) {
  std::uint32_t session_id = 0;
  if (!r.u32(&session_id) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto it = conn.eco.find(session_id);
  if (it == conn.eco.end()) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(session_id) +
                      " is not open on this connection");
    return;
  }
  EcoSession& session = *it->second;
  // Re-admit every run: under overload an ECO re-timing truncates into a
  // conservative anytime result exactly like a full run. Safe between runs
  // of one session — a truncated run drops the reuse baseline, so the next
  // run starts from scratch instead of replaying partial results.
  util::RunBudget budget = session.spec.to_options().budget;
  admission_.admit(queue_depth, config_.default_budget, &budget);
  if (!stopping_.load(std::memory_order_acquire)) ex.cancel.reset();
  session.sta->set_budget(budget);
  // Seeded kill site: death mid-serve of a re-timing run. No durability
  // boundary is involved — the invariant is purely that acknowledged edits
  // survive and the re-run after restart matches the oracle bitwise.
  util::crash_point_hit(util::CrashPoint::kEcoRunMid);
  const sta::StaResult result = session.sta->run();
  RunResultMsg m = RunResultMsg::from_result(result);
  m.gates_reused = session.sta->stats().gates_reused;
  if (m.budget_exhausted)
    requests_truncated_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kRunResult, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_close(Connection& conn, std::uint32_t request_id,
                                   util::WireReader& r) {
  std::uint32_t session_id = 0;
  if (!r.u32(&session_id) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto it = conn.eco.find(session_id);
  if (it == conn.eco.end()) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(session_id) +
                      " is not open on this connection");
    return;
  }
  const std::uint64_t token = it->second->token;
  conn.eco.erase(it);
  if (durable() && token != 0) {
    std::lock_guard<std::mutex> lock(durable_mutex_);
    std::string error;
    wal_.append(static_cast<std::uint16_t>(WalRecordType::kSessionClose),
                encode_wal_close(token), &error);
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    durable_.erase(token);
    detached_.erase(token);
    maybe_compact_locked();
  }
  eco_open_.fetch_sub(1, std::memory_order_relaxed);
  respond(conn, MsgType::kEcoClosed, request_id, util::WireWriter{});
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xtalk::service
