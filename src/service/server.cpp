#include "service/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/diag.hpp"

namespace xtalk::service {

namespace {

/// Read-chunk size for the buffered receive path.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Poll timeout: bounds how stale the loop's view of stop flags can get.
constexpr int kPollTimeoutMs = 50;

/// Decode the frame length prefix (little-endian u32).
std::uint32_t frame_length(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

XtalkServer::XtalkServer(DesignSession& design, ServiceConfig config)
    : design_(design),
      config_(std::move(config)),
      admission_(config_.admission) {}

XtalkServer::~XtalkServer() { stop(); }

void XtalkServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listener_ = config_.unix_path.empty()
                  ? util::Listener::tcp_loopback(config_.tcp_port)
                  : util::Listener::unix_domain(config_.unix_path);
  start_time_ = std::chrono::steady_clock::now();
  const std::size_t n_exec = std::max<std::size_t>(1, config_.num_executors);
  executors_.reserve(n_exec);
  for (std::size_t i = 0; i < n_exec; ++i) {
    auto ex = std::make_unique<Executor>();
    ex->pool = std::make_unique<util::ThreadPool>(
        util::ThreadPool::resolve_threads(config_.pool_threads));
    executors_.push_back(std::move(ex));
  }
  running_.store(true, std::memory_order_release);
  for (auto& ex : executors_) {
    ex->thread = std::thread([this, e = ex.get()] { executor_loop(*e); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
}

void XtalkServer::request_stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (config_.drain == DrainPolicy::kTruncate) {
    // Soft-cancel: in-flight and queued runs truncate at the next governor
    // checkpoint into conservative anytime results. The tokens stay
    // requested for the rest of the drain (executors skip the reset).
    for (auto& ex : executors_) ex->cancel.request(/*hard=*/false);
  }
  wake_.notify();
}

void XtalkServer::join() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (event_thread_.joinable()) event_thread_.join();
  executors_stop_.store(true, std::memory_order_release);
  for (auto& ex : executors_) {
    {
      std::lock_guard<std::mutex> qlock(ex->mutex);
    }
    ex->cv.notify_all();
    if (ex->thread.joinable()) ex->thread.join();
  }
  executors_.clear();
  connections_.clear();
  running_.store(false, std::memory_order_release);
  joined_ = true;
}

void XtalkServer::stop() {
  if (!running_.load(std::memory_order_acquire) && !event_thread_.joinable())
    return;
  request_stop();
  join();
}

StatsMsg XtalkServer::stats_snapshot() const {
  StatsMsg s;
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.requests_truncated = requests_truncated_.load(std::memory_order_relaxed);
  s.requests_degraded_admission = admission_.degraded();
  s.eco_sessions_open = eco_open_.load(std::memory_order_relaxed);
  s.eco_sessions_reaped = eco_reaped_.load(std::memory_order_relaxed);
  s.connections_evicted = evicted_.load(std::memory_order_relaxed);
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.queue_peak = admission_.queue_peak();
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return s;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void XtalkServer::event_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listener_.valid()) {
      // Drain step 1: stop accepting BEFORE touching existing work, so a
      // restarting supervisor can bind the successor socket while we finish.
      listener_.close();
    }

    // Close connections that have fully drained (no pending work, flushed
    // outbox). During normal operation only dead peers are reaped; during
    // drain this is how the server winds down to zero connections. A peer
    // that blew a progress deadline (slow-loris, or refusing to read its
    // responses during drain) is declared gone first, so a stalled socket
    // can never pin the server — drain always terminates.
    const auto now = std::chrono::steady_clock::now();
    for (auto it = connections_.begin(); it != connections_.end();) {
      const auto& conn = it->second;
      if (!conn->peer_gone && !conn->kill &&
          connection_stalled(conn, now, stopping)) {
        evicted_.fetch_add(1, std::memory_order_relaxed);
        conn->peer_gone = true;
      }
      const bool close_now =
          (conn->kill || conn->peer_gone || stopping) &&
          connection_drained(conn);
      if (close_now) {
        reap_connection_sessions(*conn);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    if (stopping && connections_.empty()) return;

    fds.clear();
    polled.clear();
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    if (listener_.valid()) fds.push_back({listener_.fd(), POLLIN, 0});
    for (auto& [id, conn] : connections_) {
      short events = 0;
      std::size_t pending_out = 0;
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        pending_out = conn->outbuf.size() - conn->out_off;
      }
      if (pending_out > 0) events |= POLLOUT;
      // Stop reading once draining/killing: received-but-unread bytes are
      // not "in-flight requests", and resync after a kill is impossible.
      // Backpressure: also stop reading while the outbox is over budget —
      // the peer must drain responses before pipelining more requests.
      if (!stopping && !conn->kill && !conn->peer_gone &&
          pending_out < config_.max_outbox_bytes) {
        events |= POLLIN;
      }
      if (events == 0) continue;
      fds.push_back({conn->sock.fd(), events, 0});
      polled.push_back(conn);
    }

    ::poll(fds.data(), fds.size(), kPollTimeoutMs);

    std::size_t idx = 0;
    if (fds[idx].revents & POLLIN) wake_.drain();
    ++idx;
    if (listener_.valid()) {
      if (fds[idx].revents & POLLIN) accept_pending();
      ++idx;
    }
    for (std::size_t c = 0; c < polled.size(); ++c, ++idx) {
      const auto& conn = polled[c];
      const short re = fds[idx].revents;
      if (re & (POLLERR | POLLNVAL)) conn->peer_gone = true;
      if (re & (POLLIN | POLLHUP)) read_connection(conn);
      if (re & POLLOUT) write_connection(conn);
    }

    // Dispatch outside the poll-result walk: a response enqueued by an
    // executor between poll() and here may have freed a connection to take
    // its next pipelined request.
    for (auto& [id, conn] : connections_) dispatch_ready(conn);
  }
}

void XtalkServer::accept_pending() {
  for (;;) {
    util::Socket sock = listener_.accept_nonblocking();
    if (!sock.valid()) return;
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    conn->executor = next_executor_++ % executors_.size();
    conn->last_read_progress = std::chrono::steady_clock::now();
    conn->last_write_progress = conn->last_read_progress;
    connections_.emplace(conn->id, conn);
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void XtalkServer::read_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->kill || conn->peer_gone) return;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    bool would_block = false;
    const std::ptrdiff_t got =
        conn->sock.recv_some(chunk, sizeof chunk, &would_block);
    if (got > 0) {
      conn->inbuf.insert(conn->inbuf.end(), chunk, chunk + got);
      bytes_in_.fetch_add(static_cast<std::uint64_t>(got),
                          std::memory_order_relaxed);
      continue;
    }
    if (got < 0 && would_block) break;
    conn->peer_gone = true;  // orderly EOF or hard error
    break;
  }
  parse_frames(conn);
}

void XtalkServer::parse_frames(const std::shared_ptr<Connection>& conn) {
  std::size_t off = 0;
  while (conn->inbuf.size() - off >= kFrameHeaderBytes) {
    const std::uint32_t len = frame_length(conn->inbuf.data() + off);
    if (len > config_.wire.max_frame_bytes) {
      // Unframeable stream: no way to know where the next frame starts.
      // Best effort: ship an error the client may still read, then close.
      util::WireWriter body;
      ErrorMsg err{ErrorCode::kMalformedFrame,
                   "frame length " + std::to_string(len) +
                       " exceeds limit " +
                       std::to_string(config_.wire.max_frame_bytes)};
      err.encode(body);
      {
        std::lock_guard<std::mutex> lock(conn->out_mutex);
        auto frame = make_frame(MsgType::kError, 0, body);
        conn->outbuf.insert(conn->outbuf.end(), frame.begin(), frame.end());
      }
      conn->kill = true;
      conn->inbuf.clear();
      return;
    }
    if (conn->inbuf.size() - off < kFrameHeaderBytes + len) break;
    const std::uint8_t* payload = conn->inbuf.data() + off + kFrameHeaderBytes;
    if (len >= 1 && payload[0] == static_cast<std::uint8_t>(MsgType::kHealth)) {
      // Health never queues behind analysis work: a load balancer probing a
      // saturated server needs the truthful "I'm clamping" answer now, not
      // after the queue it is asking about.
      respond_health(conn, std::vector<std::uint8_t>(payload, payload + len));
    } else {
      conn->ready.emplace_back(payload, payload + len);
    }
    off += kFrameHeaderBytes + len;
  }
  if (off > 0) conn->inbuf.erase(conn->inbuf.begin(), conn->inbuf.begin() + off);
}

void XtalkServer::respond_health(const std::shared_ptr<Connection>& conn,
                                 const std::vector<std::uint8_t>& payload) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  util::WireReader r(payload.data(), payload.size(), config_.wire);
  MsgType type;
  std::uint32_t request_id = 0;
  if (!read_prologue(r, &type, &request_id) || !r.finish()) {
    respond_error(*conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  HealthMsg m;
  m.accepting = !stopping_.load(std::memory_order_acquire);
  m.connections = static_cast<std::uint64_t>(connections_.size());
  std::uint64_t depth = 0;
  std::uint64_t outbox = 0;
  for (const auto& [id, other] : connections_) {
    depth += static_cast<std::uint64_t>(other->ready.size());
    if (other->busy.load(std::memory_order_acquire)) ++depth;
    std::lock_guard<std::mutex> lock(other->out_mutex);
    outbox +=
        static_cast<std::uint64_t>(other->outbuf.size() - other->out_off);
  }
  m.queue_depth = depth;
  m.soft_queue_limit =
      static_cast<std::uint64_t>(config_.admission.soft_queue);
  m.clamping = m.soft_queue_limit > 0 && depth >= m.soft_queue_limit;
  m.eco_sessions_open = eco_open_.load(std::memory_order_relaxed);
  m.outbox_bytes = outbox;
  util::WireWriter body;
  m.encode(body);
  respond(*conn, MsgType::kHealthOk, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::dispatch_ready(const std::shared_ptr<Connection>& conn) {
  // One request per connection in flight: ECO edits are order-dependent, so
  // pipelined requests execute strictly in receive order.
  if (conn->kill) return;
  if (conn->ready.empty()) return;
  if (conn->busy.load(std::memory_order_acquire)) return;
  conn->busy.store(true, std::memory_order_release);
  Request req;
  req.conn = conn;
  req.payload = std::move(conn->ready.front());
  conn->ready.pop_front();
  Executor& ex = *executors_[conn->executor];
  {
    std::lock_guard<std::mutex> lock(ex.mutex);
    ex.queue.push_back(std::move(req));
  }
  ex.cv.notify_one();
}

void XtalkServer::write_connection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  while (conn->out_off < conn->outbuf.size()) {
    bool would_block = false;
    const std::ptrdiff_t sent = conn->sock.send_some(
        conn->outbuf.data() + conn->out_off,
        conn->outbuf.size() - conn->out_off, &would_block);
    if (sent > 0) {
      conn->out_off += static_cast<std::size_t>(sent);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(sent),
                           std::memory_order_relaxed);
      continue;
    }
    if (sent < 0 && would_block) break;
    conn->peer_gone = true;  // peer closed before reading its responses
    conn->out_off = conn->outbuf.size();
    break;
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
  }
}

bool XtalkServer::connection_stalled(const std::shared_ptr<Connection>& conn,
                                     std::chrono::steady_clock::time_point now,
                                     bool stopping) {
  std::size_t pending_out = 0;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    pending_out = conn->outbuf.size() - conn->out_off;
  }
  const std::size_t pending_in = conn->inbuf.size();
  if (pending_out != conn->last_out_pending) {
    conn->last_out_pending = pending_out;
    conn->last_write_progress = now;
  }
  if (pending_in != conn->last_in_pending) {
    conn->last_in_pending = pending_in;
    conn->last_read_progress = now;
  }
  const int limit_ms =
      stopping ? config_.drain_flush_timeout_ms : config_.stall_timeout_ms;
  if (limit_ms <= 0) return false;
  const auto limit = std::chrono::milliseconds(limit_ms);
  // An unflushed outbox with no send progress: the peer stopped reading.
  if (pending_out > 0 && now - conn->last_write_progress > limit) return true;
  // A partial frame with no receive progress: a torn or slow-loris sender.
  // (Idle connections with an empty inbuf are fine — keepalive is free.)
  if (!stopping && pending_in > 0 && now - conn->last_read_progress > limit) {
    return true;
  }
  return false;
}

void XtalkServer::reap_connection_sessions(Connection& conn) {
  // The connection owns its ECO sessions; when it dies before kEcoClose the
  // sessions die with it (the recovery contract clients rely on: a lost
  // connection always means a lost session, so journal replay onto a fresh
  // session can never double-apply edits). Only runs once the connection is
  // drained (not busy), so the pinned executor is done touching conn.eco.
  const std::uint64_t orphans = static_cast<std::uint64_t>(conn.eco.size());
  if (orphans == 0) return;
  conn.eco.clear();
  eco_open_.fetch_sub(orphans, std::memory_order_relaxed);
  eco_reaped_.fetch_add(orphans, std::memory_order_relaxed);
}

bool XtalkServer::connection_drained(const std::shared_ptr<Connection>& conn) {
  if (conn->busy.load(std::memory_order_acquire)) return false;
  if (!conn->ready.empty() && !conn->kill && !conn->peer_gone) return false;
  if (conn->peer_gone) return true;  // nobody left to flush to
  std::lock_guard<std::mutex> lock(conn->out_mutex);
  return conn->out_off >= conn->outbuf.size();
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

void XtalkServer::executor_loop(Executor& ex) {
  for (;;) {
    Request req;
    std::size_t queue_depth = 0;
    {
      std::unique_lock<std::mutex> lock(ex.mutex);
      ex.cv.wait(lock, [&] {
        return !ex.queue.empty() ||
               executors_stop_.load(std::memory_order_acquire);
      });
      if (ex.queue.empty()) return;  // stop requested and queue drained
      req = std::move(ex.queue.front());
      ex.queue.pop_front();
      queue_depth = ex.queue.size();
    }
    handle_request(ex, req, queue_depth);
    req.conn->busy.store(false, std::memory_order_release);
    wake_.notify();  // flush the response / dispatch the next request
  }
}

void XtalkServer::respond(Connection& conn, MsgType type,
                          std::uint32_t request_id,
                          const util::WireWriter& body) {
  auto frame = make_frame(type, request_id, body);
  std::lock_guard<std::mutex> lock(conn.out_mutex);
  conn.outbuf.insert(conn.outbuf.end(), frame.begin(), frame.end());
}

void XtalkServer::respond_error(Connection& conn, std::uint32_t request_id,
                                ErrorCode code, const std::string& message) {
  util::WireWriter body;
  ErrorMsg{code, message}.encode(body);
  respond(conn, MsgType::kError, request_id, body);
  requests_error_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_request(Executor& ex, const Request& req,
                                 std::size_t queue_depth) {
  Connection& conn = *req.conn;
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  util::WireReader r(req.payload.data(), req.payload.size(), config_.wire);
  MsgType type;
  std::uint32_t request_id = 0;
  if (!read_prologue(r, &type, &request_id)) {
    respond_error(conn, 0, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  try {
    switch (type) {
      case MsgType::kHello: {
        // Version 1 clients sent an empty hello body; anything else carries
        // the client's wire version. Rejecting a mismatch here — before any
        // other request type is decoded — is what keeps "undefined frame
        // decoding" off the table for old clients.
        HelloMsg hello;
        if (r.remaining() == 0) {
          hello.protocol_version = 1;
        } else if (!hello.decode(r) || !r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        if (hello.protocol_version != kProtocolVersion) {
          respond_error(conn, request_id, ErrorCode::kVersionMismatch,
                        "client speaks protocol version " +
                            std::to_string(hello.protocol_version) +
                            ", server requires " +
                            std::to_string(kProtocolVersion));
          return;
        }
        const sta::DesignView view = design_.view();
        HelloOkMsg m;
        m.design_name = design_.name();
        m.num_gates = view.netlist->num_gates();
        m.num_nets = view.netlist->num_nets();
        m.num_levels = view.dag->num_levels;
        util::WireWriter body;
        m.encode(body);
        respond(conn, MsgType::kHelloOk, request_id, body);
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kPing: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        respond(conn, MsgType::kPong, request_id, util::WireWriter{});
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kRunSta:
        handle_run_sta(ex, conn, request_id, r, queue_depth);
        return;
      case MsgType::kQueryEndpoints:
        handle_query_endpoints(ex, conn, request_id, r);
        return;
      case MsgType::kQuerySlack:
        handle_query_slack(ex, conn, request_id, r);
        return;
      case MsgType::kEcoOpen:
        handle_eco_open(ex, conn, request_id, r);
        return;
      case MsgType::kEcoEdit:
        handle_eco_edit(conn, request_id, r);
        return;
      case MsgType::kEcoRun:
        handle_eco_run(ex, conn, request_id, r, queue_depth);
        return;
      case MsgType::kEcoClose:
        handle_eco_close(conn, request_id, r);
        return;
      case MsgType::kGetStats: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        util::WireWriter body;
        stats_snapshot().encode(body);
        respond(conn, MsgType::kStats, request_id, body);
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      case MsgType::kShutdown: {
        if (!r.finish()) {
          respond_error(conn, request_id, ErrorCode::kMalformedFrame,
                        r.error());
          return;
        }
        respond(conn, MsgType::kShutdownOk, request_id, util::WireWriter{});
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        request_stop();
        return;
      }
      default:
        respond_error(conn, request_id, ErrorCode::kUnknownType,
                      "unknown request type " +
                          std::to_string(static_cast<unsigned>(type)));
        return;
    }
  } catch (const std::exception& e) {
    respond_error(conn, request_id, ErrorCode::kInternal, e.what());
  }
}

void XtalkServer::handle_run_sta(Executor& ex, Connection& conn,
                                 std::uint32_t request_id, util::WireReader& r,
                                 std::size_t queue_depth) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  sta::StaOptions options = spec.to_options();
  options.pool = ex.pool.get();
  admission_.admit(queue_depth, config_.default_budget, &options.budget);
  if (!stopping_.load(std::memory_order_acquire)) ex.cancel.reset();
  options.cancel = &ex.cancel;
  if (!options.trace_path.empty()) {
    options.trace_path = qualified_trace_path(
        options.trace_path,
        request_seq_.fetch_add(1, std::memory_order_relaxed));
  }
  const sta::StaResult result = sta::run_sta(design_.view(), options);
  RunResultMsg m = RunResultMsg::from_result(result);
  m.trace_path = options.trace_path;
  if (m.budget_exhausted)
    requests_truncated_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kRunResult, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_query_endpoints(Executor& ex, Connection& conn,
                                         std::uint32_t request_id,
                                         util::WireReader& r) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto result = design_.baseline(spec, ex.pool.get());
  EndpointsMsg m;
  m.longest_path_delay = result->longest_path_delay;
  m.critical = {result->critical.net, result->critical.rising,
                result->critical.arrival};
  m.endpoints.reserve(result->endpoints.size());
  for (const sta::EndpointArrival& e : result->endpoints) {
    m.endpoints.push_back({e.net, e.rising, e.arrival});
  }
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kEndpoints, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_query_slack(Executor& ex, Connection& conn,
                                     std::uint32_t request_id,
                                     util::WireReader& r) {
  SlackQueryMsg q;
  if (!q.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto result = design_.baseline(q.spec, ex.pool.get());
  SlackMsg m;
  for (const sta::EndpointArrival& e : result->endpoints) {
    if (e.net == q.net && e.rising == q.rising) {
      m.valid = true;
      m.arrival = e.arrival;
      m.slack = q.required_time - e.arrival;
      break;
    }
  }
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kSlack, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_open(Executor& ex, Connection& conn,
                                  std::uint32_t request_id,
                                  util::WireReader& r) {
  RunSpec spec;
  if (!spec.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  const std::uint32_t id = conn.next_eco_id++;
  conn.eco.emplace(id, std::make_unique<EcoSession>(design_, spec,
                                                    ex.pool.get(), &ex.cancel));
  eco_open_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  body.u32(id);
  respond(conn, MsgType::kEcoOpened, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_edit(Connection& conn, std::uint32_t request_id,
                                  util::WireReader& r) {
  EcoEditMsg msg;
  if (!msg.decode(r) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto it = conn.eco.find(msg.session_id);
  if (it == conn.eco.end()) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(msg.session_id) +
                      " is not open on this connection");
    return;
  }
  sta::incremental::DesignEditor& editor = *it->second->editor;
  const std::size_t num_gates = editor.netlist().num_gates();
  const std::size_t num_nets = editor.netlist().num_nets();
  std::uint32_t applied = 0;
  for (const EcoOp& op : msg.ops) {
    // Validate ids up front so a bad op surfaces as kBadRequest, not as an
    // editor exception. Edits already applied in this batch stay applied
    // (the response reports the applied count).
    const bool needs_gate = op.kind == EcoOp::Kind::kResizeGate ||
                            op.kind == EcoOp::Kind::kSetWireRc ||
                            op.kind == EcoOp::Kind::kRetargetSink;
    const bool needs_net_b = op.kind == EcoOp::Kind::kSetCoupling ||
                             op.kind == EcoOp::Kind::kRemoveCoupling;
    if ((needs_gate && op.gate >= num_gates) ||
        (op.kind != EcoOp::Kind::kResizeGate && op.net_a >= num_nets) ||
        (needs_net_b && op.net_b >= num_nets)) {
      respond_error(conn, request_id, ErrorCode::kBadRequest,
                    "ECO op references an id outside the design (applied " +
                        std::to_string(applied) + " of " +
                        std::to_string(msg.ops.size()) + ")");
      return;
    }
    try {
      switch (op.kind) {
        case EcoOp::Kind::kResizeGate:
          editor.resize_gate(op.gate, op.value_a);
          break;
        case EcoOp::Kind::kSetWireCap:
          editor.set_wire_cap(op.net_a, op.value_a);
          break;
        case EcoOp::Kind::kSetCoupling:
          editor.set_coupling(op.net_a, op.net_b, op.value_a);
          break;
        case EcoOp::Kind::kRemoveCoupling:
          editor.remove_coupling(op.net_a, op.net_b);
          break;
        case EcoOp::Kind::kSetWireRc:
          editor.set_wire_rc(op.net_a, netlist::PinRef{op.gate, op.pin},
                             op.value_a, op.value_b);
          break;
        case EcoOp::Kind::kRetargetSink:
          editor.retarget_sink(op.gate, op.pin, op.net_a, op.value_a,
                               op.value_b);
          break;
      }
    } catch (const std::exception& e) {
      respond_error(conn, request_id, ErrorCode::kEditRejected,
                    std::string(e.what()) + " (applied " +
                        std::to_string(applied) + " of " +
                        std::to_string(msg.ops.size()) + ")");
      return;
    }
    ++applied;
  }
  util::WireWriter body;
  body.u32(applied);
  respond(conn, MsgType::kEcoEditOk, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_run(Executor& ex, Connection& conn,
                                 std::uint32_t request_id, util::WireReader& r,
                                 std::size_t queue_depth) {
  std::uint32_t session_id = 0;
  if (!r.u32(&session_id) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  auto it = conn.eco.find(session_id);
  if (it == conn.eco.end()) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(session_id) +
                      " is not open on this connection");
    return;
  }
  EcoSession& session = *it->second;
  // Re-admit every run: under overload an ECO re-timing truncates into a
  // conservative anytime result exactly like a full run. Safe between runs
  // of one session — a truncated run drops the reuse baseline, so the next
  // run starts from scratch instead of replaying partial results.
  util::RunBudget budget = session.spec.to_options().budget;
  admission_.admit(queue_depth, config_.default_budget, &budget);
  if (!stopping_.load(std::memory_order_acquire)) ex.cancel.reset();
  session.sta->set_budget(budget);
  const sta::StaResult result = session.sta->run();
  RunResultMsg m = RunResultMsg::from_result(result);
  m.gates_reused = session.sta->stats().gates_reused;
  if (m.budget_exhausted)
    requests_truncated_.fetch_add(1, std::memory_order_relaxed);
  util::WireWriter body;
  m.encode(body);
  respond(conn, MsgType::kRunResult, request_id, body);
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

void XtalkServer::handle_eco_close(Connection& conn, std::uint32_t request_id,
                                   util::WireReader& r) {
  std::uint32_t session_id = 0;
  if (!r.u32(&session_id) || !r.finish()) {
    respond_error(conn, request_id, ErrorCode::kMalformedFrame, r.error());
    return;
  }
  if (conn.eco.erase(session_id) == 0) {
    respond_error(conn, request_id, ErrorCode::kUnknownSession,
                  "ECO session " + std::to_string(session_id) +
                      " is not open on this connection");
    return;
  }
  eco_open_.fetch_sub(1, std::memory_order_relaxed);
  respond(conn, MsgType::kEcoClosed, request_id, util::WireWriter{});
  requests_ok_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xtalk::service
