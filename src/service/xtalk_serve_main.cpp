// xtalk_serve: the long-lived analysis daemon.
//
//   xtalk_serve --socket /tmp/xtalk.sock --preset s38417
//   xtalk_serve --tcp-port 7380 --bench design.bench --executors 4
//
// Loads the design ONCE (netlist -> placement -> routing -> extraction ->
// levelization), then serves analysis requests over the binary protocol
// until SIGTERM/SIGINT (graceful drain: listener closes first, received
// requests finish, connections flush) or a client kShutdown.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/crosstalk_sta.hpp"
#include "netlist/circuit_generator.hpp"
#include "service/server.hpp"

namespace {

xtalk::service::XtalkServer* g_server = nullptr;

void on_signal(int) {
  // request_stop() is async-signal-safe enough for our purpose: it flips an
  // atomic and writes one byte into the wake pipe.
  if (g_server != nullptr) g_server->request_stop();
}

void usage() {
  std::cerr
      << "usage: xtalk_serve [options]\n"
         "  --socket PATH       listen on a unix-domain socket (default\n"
         "                      /tmp/xtalk.sock when --tcp-port is absent)\n"
         "  --tcp-port N        listen on loopback TCP instead (0 = pick)\n"
         "  --preset NAME       synthetic design: s35932 | s38417 | s38584\n"
         "                      | tiny (default s38417)\n"
         "  --bench FILE        load a .bench netlist instead of a preset\n"
         "  --executors N       concurrent request executors (default 2)\n"
         "  --pool-threads N    worker threads per executor (default 1,\n"
         "                      0 = hardware concurrency)\n"
         "  --deadline-ms X     default per-request deadline budget\n"
         "  --max-calcs N       default per-request waveform-calc budget\n"
         "  --soft-queue N      admission clamp threshold (default 8)\n"
         "  --drain-truncate    truncate in-flight runs on shutdown instead\n"
         "                      of finishing them\n"
         "  --stall-timeout-ms N\n"
         "                      evict connections making no read/write\n"
         "                      progress for N ms (default 30000, 0 = never)\n"
         "  --drain-flush-ms N  per-connection flush grace during drain\n"
         "                      (default 5000)\n"
         "  --max-outbox-bytes N\n"
         "                      pause reading from a connection whose\n"
         "                      response backlog exceeds N (default 8 MiB)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xtalk;

  std::string socket_path;
  bool use_tcp = false;
  std::uint16_t tcp_port = 0;
  std::string preset = "s38417";
  std::string bench_file;
  service::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp-port") {
      use_tcp = true;
      tcp_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--preset") {
      preset = value();
    } else if (arg == "--bench") {
      bench_file = value();
    } else if (arg == "--executors") {
      config.num_executors = std::stoul(value());
    } else if (arg == "--pool-threads") {
      config.pool_threads = std::stoi(value());
    } else if (arg == "--deadline-ms") {
      config.default_budget.deadline_ms = std::stod(value());
    } else if (arg == "--max-calcs") {
      config.default_budget.max_waveform_calcs = std::stoul(value());
    } else if (arg == "--soft-queue") {
      config.admission.soft_queue = std::stoul(value());
    } else if (arg == "--drain-truncate") {
      config.drain = service::DrainPolicy::kTruncate;
    } else if (arg == "--stall-timeout-ms") {
      config.stall_timeout_ms = std::stoi(value());
    } else if (arg == "--drain-flush-ms") {
      config.drain_flush_timeout_ms = std::stoi(value());
    } else if (arg == "--max-outbox-bytes") {
      config.max_outbox_bytes = std::stoul(value());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (use_tcp) {
    config.tcp_port = tcp_port;
  } else {
    config.unix_path = socket_path.empty() ? "/tmp/xtalk.sock" : socket_path;
  }

  try {
    std::string name;
    core::Design design = [&] {
      if (!bench_file.empty()) {
        std::ifstream in(bench_file);
        if (!in) throw std::runtime_error("cannot open " + bench_file);
        std::ostringstream text;
        text << in.rdbuf();
        name = bench_file;
        return core::Design::from_bench(text.str());
      }
      netlist::GeneratorSpec spec;
      if (preset == "s35932") {
        spec = netlist::s35932_like();
      } else if (preset == "s38417") {
        spec = netlist::s38417_like();
      } else if (preset == "s38584") {
        spec = netlist::s38584_like();
      } else if (preset == "tiny") {
        spec = netlist::scaled_spec("tiny", 7, 300, 10);
      } else {
        throw std::runtime_error("unknown preset " + preset);
      }
      name = spec.name;
      std::cerr << "xtalk_serve: building " << name << " (" << spec.num_cells
                << " cells)...\n";
      return core::Design::generate(spec);
    }();

    service::DesignSession session(std::move(design), name);
    service::XtalkServer server(session, config);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    if (config.unix_path.empty()) {
      std::cerr << "xtalk_serve: listening on tcp 127.0.0.1:" << server.port()
                << "\n";
    } else {
      std::cerr << "xtalk_serve: listening on " << config.unix_path << "\n";
    }
    server.join();
    g_server = nullptr;
    const service::StatsMsg s = server.stats_snapshot();
    std::cerr << "xtalk_serve: drained after " << s.requests_total
              << " requests (" << s.requests_truncated << " truncated, "
              << s.requests_error << " errors)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "xtalk_serve: fatal: " << e.what() << "\n";
    return 1;
  }
}
