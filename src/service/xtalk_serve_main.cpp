// xtalk_serve: the long-lived analysis daemon.
//
//   xtalk_serve --socket /tmp/xtalk.sock --preset s38417
//   xtalk_serve --tcp-port 7380 --bench design.bench --executors 4
//   xtalk_serve --tcp-port 7380 --state-dir /var/lib/xtalk --supervise
//
// Loads the design ONCE (netlist -> placement -> routing -> extraction ->
// levelization), then serves analysis requests over the binary protocol
// until SIGTERM/SIGINT (graceful drain: listener closes first, received
// requests finish, connections flush) or a client kShutdown.
//
// Crash-only mode (--state-dir): the server journals every acknowledged ECO
// edit to a WAL and snapshots its memoized baselines, so a kill -9 loses
// nothing a client was told was applied. --supervise adds a tiny parent
// process whose only job is restarting the server with capped exponential
// backoff when it dies abnormally; recovery is just the normal cold-start
// path (replay WAL, re-warm baselines), per the crash-only contract.
//
// Signals are handled async-signal-safely via a self-pipe: handlers only
// write() one byte; the event loop (or the supervisor's poll) reads it and
// does the actual work on a normal thread.
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/crosstalk_sta.hpp"
#include "netlist/circuit_generator.hpp"
#include "service/server.hpp"
#include "util/persist.hpp"
#include "util/wire.hpp"

namespace {

// Self-pipe shared by the signal handlers. Handlers do nothing but write one
// tag byte ('t' = terminate, 'c' = child state change); everything else —
// draining the server, reaping the child — happens outside signal context.
int g_stop_pipe[2] = {-1, -1};

void on_stop_signal(int) {
  const char tag = 't';
  // The pipe is non-blocking; if it is full a stop byte is already pending.
  [[maybe_unused]] ssize_t n = ::write(g_stop_pipe[1], &tag, 1);
}

void on_sigchld(int) {
  const char tag = 'c';
  [[maybe_unused]] ssize_t n = ::write(g_stop_pipe[1], &tag, 1);
}

bool make_stop_pipe() {
  if (::pipe(g_stop_pipe) != 0) return false;
  for (int fd : g_stop_pipe) {
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  return true;
}

void close_stop_pipe() {
  for (int& fd : g_stop_pipe) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

/// Drain the pipe completely. Returns the tags seen.
struct StopPipeTags {
  bool stop = false;
  bool child = false;
};

StopPipeTags drain_stop_pipe() {
  StopPipeTags tags;
  char buf[64];
  for (;;) {
    const ssize_t got = ::read(g_stop_pipe[0], buf, sizeof buf);
    if (got > 0) {
      for (ssize_t i = 0; i < got; ++i) {
        if (buf[i] == 't') tags.stop = true;
        if (buf[i] == 'c') tags.child = true;
      }
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return tags;  // EAGAIN (empty) or EOF
  }
}

void usage() {
  std::cerr
      << "usage: xtalk_serve [options]\n"
         "  --socket PATH       listen on a unix-domain socket (default\n"
         "                      /tmp/xtalk.sock when --tcp-port is absent)\n"
         "  --tcp-port N        listen on loopback TCP instead (0 = pick)\n"
         "  --preset NAME       synthetic design: s35932 | s38417 | s38584\n"
         "                      | tiny (default s38417)\n"
         "  --bench FILE        load a .bench netlist instead of a preset\n"
         "  --executors N       concurrent request executors (default 2)\n"
         "  --pool-threads N    worker threads per executor (default 1,\n"
         "                      0 = hardware concurrency)\n"
         "  --deadline-ms X     default per-request deadline budget\n"
         "  --max-calcs N       default per-request waveform-calc budget\n"
         "  --soft-queue N      admission clamp threshold (default 8)\n"
         "  --drain-truncate    truncate in-flight runs on shutdown instead\n"
         "                      of finishing them\n"
         "  --stall-timeout-ms N\n"
         "                      evict connections making no read/write\n"
         "                      progress for N ms (default 30000, 0 = never)\n"
         "  --drain-flush-ms N  per-connection flush grace during drain\n"
         "                      (default 5000)\n"
         "  --max-outbox-bytes N\n"
         "                      pause reading from a connection whose\n"
         "                      response backlog exceeds N (default 8 MiB)\n"
         "  --state-dir DIR     crash-only durability: snapshot + session\n"
         "                      WAL directory; acknowledged ECO edits\n"
         "                      survive restarts and sessions resume by\n"
         "                      token (also remembers the design recipe)\n"
         "  --no-fsync          skip fsync on snapshots/WAL appends (only\n"
         "                      for tests whose state dir is tmpfs)\n"
         "  --linger-ms N       keep a detached durable session resumable\n"
         "                      for N ms before reaping it (default 30000)\n"
         "  --supervise         run a supervisor parent that restarts the\n"
         "                      server with capped exponential backoff when\n"
         "                      it exits abnormally (pair with --state-dir)\n";
}

/// The design recipe persisted to state-dir/design.snap so a supervised
/// restart (or a bare `xtalk_serve --state-dir DIR`) rebuilds the same
/// design without repeating --preset/--bench.
struct DesignRecipe {
  std::uint8_t kind = 0;  ///< 0 = preset name, 1 = bench file path
  std::string value;
};

std::string design_snap_path(const std::string& state_dir) {
  return state_dir + "/design.snap";
}

void save_design_recipe(const std::string& state_dir,
                        const DesignRecipe& recipe, bool do_fsync) {
  xtalk::util::WireWriter w;
  w.u8(recipe.kind);
  w.str(recipe.value);
  std::string error;
  if (xtalk::util::save_snapshot(design_snap_path(state_dir),
                                 xtalk::service::kSnapKindDesign,
                                 xtalk::service::kSnapVersion, w.data(), &error,
                                 do_fsync) != xtalk::util::PersistStatus::kOk) {
    std::cerr << "xtalk_serve: warning: cannot persist design recipe: "
              << error << "\n";
  }
}

bool load_design_recipe(const std::string& state_dir, DesignRecipe* recipe) {
  std::vector<std::uint8_t> payload;
  std::string error;
  if (xtalk::util::load_snapshot(design_snap_path(state_dir),
                                 xtalk::service::kSnapKindDesign,
                                 xtalk::service::kSnapVersion, &payload,
                                 &error) != xtalk::util::PersistStatus::kOk) {
    return false;
  }
  xtalk::util::WireReader r(payload);
  return r.u8(&recipe->kind) && r.str(&recipe->value) && r.finish() &&
         recipe->kind <= 1;
}

/// Run the server to completion in this process. Installs self-pipe signal
/// handlers (SIGTERM/SIGINT -> drain) and wires the pipe's read end into the
/// event loop via ServiceConfig::stop_event_fd.
int run_server(xtalk::core::Design&& design, const std::string& name,
               xtalk::service::ServiceConfig config) {
  using namespace xtalk;
  if (!make_stop_pipe()) {
    std::cerr << "xtalk_serve: fatal: cannot create signal pipe: "
              << std::strerror(errno) << "\n";
    return 1;
  }
  config.stop_event_fd = g_stop_pipe[0];
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);

  service::DesignSession session(std::move(design), name);
  service::XtalkServer server(session, config);
  server.start();
  if (config.unix_path.empty()) {
    std::cerr << "xtalk_serve: listening on tcp 127.0.0.1:" << server.port()
              << "\n";
  } else {
    std::cerr << "xtalk_serve: listening on " << config.unix_path << "\n";
  }
  server.join();
  const service::StatsMsg s = server.stats_snapshot();
  std::cerr << "xtalk_serve: drained after " << s.requests_total
            << " requests (" << s.requests_truncated << " truncated, "
            << s.requests_error << " errors";
  if (!config.state_dir.empty()) {
    std::cerr << "; generation " << s.restart_generation << ", "
              << s.wal_records << " WAL records";
  }
  std::cerr << ")\n";
  close_stop_pipe();
  return 0;
}

/// Supervisor: fork the server as a child; restart it on abnormal exit with
/// capped exponential backoff. The design is built once here and inherited
/// copy-on-write by every child, so a restart never repeats the (expensive)
/// build. A clean child exit (drain via SIGTERM or client kShutdown) ends
/// the supervisor too — restarts are for crashes only.
int supervise(xtalk::core::Design&& design, const std::string& name,
              const xtalk::service::ServiceConfig& config) {
  if (!make_stop_pipe()) {
    std::cerr << "xtalk_serve: fatal: cannot create signal pipe: "
              << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGCHLD, on_sigchld);

  constexpr int kBackoffBaseMs = 100;
  constexpr int kBackoffCapMs = 5000;
  constexpr std::int64_t kStableChildMs = 10000;

  auto now_ms = [] {
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
  };

  auto spawn = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: shed the supervisor's pipe and handlers, then become the
      // server (run_server installs its own pipe + handlers).
      std::signal(SIGCHLD, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      std::signal(SIGINT, SIG_DFL);
      close_stop_pipe();
      const int rc = run_server(std::move(design), name, config);
      std::_Exit(rc);
    }
    return pid;
  };

  auto wait_child = [](pid_t pid, int* status) -> pid_t {
    for (;;) {
      const pid_t got = ::waitpid(pid, status, 0);
      if (got >= 0 || errno != EINTR) return got;
    }
  };

  int backoff_ms = kBackoffBaseMs;
  std::int64_t child_born_ms = now_ms();
  pid_t child = spawn();
  if (child < 0) {
    std::cerr << "xtalk_serve: fatal: fork: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::cerr << "xtalk_serve: supervisor watching pid " << child << "\n";

  for (;;) {
    struct pollfd pfd = {g_stop_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::cerr << "xtalk_serve: fatal: poll: " << std::strerror(errno)
                << "\n";
      return 1;
    }
    const StopPipeTags tags = drain_stop_pipe();
    if (tags.stop) {
      // Pass the drain request down, wait for the child, exit cleanly.
      if (child > 0) {
        ::kill(child, SIGTERM);
        int status = 0;
        wait_child(child, &status);
      }
      std::cerr << "xtalk_serve: supervisor exiting (signal)\n";
      return 0;
    }
    if (!tags.child) continue;
    int status = 0;
    const pid_t got = ::waitpid(child, &status, WNOHANG);
    if (got <= 0) continue;  // spurious or already-reaped wakeup
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::cerr << "xtalk_serve: server exited cleanly; supervisor done\n";
      return 0;
    }
    if (WIFSIGNALED(status)) {
      std::cerr << "xtalk_serve: server killed by signal " << WTERMSIG(status);
    } else {
      std::cerr << "xtalk_serve: server exited with status "
                << WEXITSTATUS(status);
    }
    // Crash-only restart: a child that survived long enough resets the
    // backoff (the crash is not a tight loop); otherwise back off harder.
    const std::int64_t lived_ms = now_ms() - child_born_ms;
    if (lived_ms >= kStableChildMs) {
      backoff_ms = kBackoffBaseMs;
    }
    std::cerr << "; restarting in " << backoff_ms << " ms\n";
    // Interruptible backoff: a SIGTERM during the wait still exits promptly.
    const std::int64_t deadline = now_ms() + backoff_ms;
    bool stopped = false;
    for (;;) {
      const std::int64_t left = deadline - now_ms();
      if (left <= 0) break;
      struct pollfd bp = {g_stop_pipe[0], POLLIN, 0};
      const int brc = ::poll(&bp, 1, static_cast<int>(left));
      if (brc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (brc > 0 && drain_stop_pipe().stop) {
        stopped = true;
        break;
      }
    }
    if (stopped) {
      std::cerr << "xtalk_serve: supervisor exiting (signal)\n";
      return 0;
    }
    backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
    child_born_ms = now_ms();
    child = spawn();
    if (child < 0) {
      std::cerr << "xtalk_serve: fatal: fork: " << std::strerror(errno)
                << "\n";
      return 1;
    }
    std::cerr << "xtalk_serve: supervisor restarted server as pid " << child
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xtalk;

  std::string socket_path;
  bool use_tcp = false;
  std::uint16_t tcp_port = 0;
  std::string preset = "s38417";
  bool preset_given = false;
  std::string bench_file;
  bool supervise_mode = false;
  service::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp-port") {
      use_tcp = true;
      tcp_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--preset") {
      preset = value();
      preset_given = true;
    } else if (arg == "--bench") {
      bench_file = value();
    } else if (arg == "--executors") {
      config.num_executors = std::stoul(value());
    } else if (arg == "--pool-threads") {
      config.pool_threads = std::stoi(value());
    } else if (arg == "--deadline-ms") {
      config.default_budget.deadline_ms = std::stod(value());
    } else if (arg == "--max-calcs") {
      config.default_budget.max_waveform_calcs = std::stoul(value());
    } else if (arg == "--soft-queue") {
      config.admission.soft_queue = std::stoul(value());
    } else if (arg == "--drain-truncate") {
      config.drain = service::DrainPolicy::kTruncate;
    } else if (arg == "--stall-timeout-ms") {
      config.stall_timeout_ms = std::stoi(value());
    } else if (arg == "--drain-flush-ms") {
      config.drain_flush_timeout_ms = std::stoi(value());
    } else if (arg == "--max-outbox-bytes") {
      config.max_outbox_bytes = std::stoul(value());
    } else if (arg == "--state-dir") {
      config.state_dir = value();
    } else if (arg == "--no-fsync") {
      config.state_fsync = false;
    } else if (arg == "--linger-ms") {
      config.detached_linger_ms = std::stoi(value());
    } else if (arg == "--supervise") {
      supervise_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (use_tcp) {
    config.tcp_port = tcp_port;
  } else {
    config.unix_path = socket_path.empty() ? "/tmp/xtalk.sock" : socket_path;
  }

  try {
    // Resolve the design recipe. A state dir remembers the last recipe, so
    // a supervised restart script needs only --state-dir; explicit
    // --preset/--bench always wins and refreshes the stored recipe.
    if (!config.state_dir.empty()) {
      ::mkdir(config.state_dir.c_str(), 0755);  // EEXIST is fine
      if (!preset_given && bench_file.empty()) {
        DesignRecipe stored;
        if (load_design_recipe(config.state_dir, &stored)) {
          if (stored.kind == 1) {
            bench_file = stored.value;
          } else {
            preset = stored.value;
          }
          std::cerr << "xtalk_serve: design recipe from state dir: "
                    << (stored.kind == 1 ? "bench " : "preset ")
                    << stored.value << "\n";
        }
      }
    }

    std::string name;
    core::Design design = [&] {
      if (!bench_file.empty()) {
        std::ifstream in(bench_file);
        if (!in) throw std::runtime_error("cannot open " + bench_file);
        std::ostringstream text;
        text << in.rdbuf();
        name = bench_file;
        return core::Design::from_bench(text.str());
      }
      netlist::GeneratorSpec spec;
      if (preset == "s35932") {
        spec = netlist::s35932_like();
      } else if (preset == "s38417") {
        spec = netlist::s38417_like();
      } else if (preset == "s38584") {
        spec = netlist::s38584_like();
      } else if (preset == "tiny") {
        spec = netlist::scaled_spec("tiny", 7, 300, 10);
      } else {
        throw std::runtime_error("unknown preset " + preset);
      }
      name = spec.name;
      std::cerr << "xtalk_serve: building " << name << " (" << spec.num_cells
                << " cells)...\n";
      return core::Design::generate(spec);
    }();

    if (!config.state_dir.empty()) {
      DesignRecipe recipe;
      recipe.kind = bench_file.empty() ? 0 : 1;
      recipe.value = bench_file.empty() ? preset : bench_file;
      save_design_recipe(config.state_dir, recipe, config.state_fsync);
    }

    if (supervise_mode) {
      return supervise(std::move(design), name, config);
    }
    return run_server(std::move(design), name, config);
  } catch (const std::exception& e) {
    std::cerr << "xtalk_serve: fatal: " << e.what() << "\n";
    return 1;
  }
}
