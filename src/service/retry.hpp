// Resilient client: reconnect, retry, and ECO session recovery.
//
// ResilientClient wraps the one-connection XtalkClient with the failure
// policy DESIGN.md §14 specifies:
//
//   * Idempotent requests (hello/ping/run_sta/queries/stats/health) retry
//     transparently after any TransportError: reconnect with exponential
//     backoff + deterministic jitter, bounded by a retry budget. Re-running
//     an analysis is safe because results are a pure function of the design
//     and the RunSpec (the engine's bitwise-determinism contract).
//
//   * ECO sessions are NOT idempotent on the wire — but they are
//     *reconstructible*. The handle journals every accepted edit batch
//     client-side. Against a durable server (--state-dir) recovery is
//     resume-first: the handle presents the resumption token eco_open
//     returned, the (possibly restarted) server re-binds the session it
//     rebuilt from its WAL, reports applied_seq, and the handle replays
//     only the journal suffix past it — batch_seq sequencing makes the
//     replay exactly-once even when the ack (not the batch) was what the
//     crash destroyed. When resume is refused (volatile server, reaped
//     token, poisoned handle) recovery falls back to the PR 8 path: open a
//     fresh COW session and replay the full journal. Either way the
//     recovered session is bitwise identical to an uninterrupted one
//     (PR 2's incremental-vs-scratch oracle).
//
//   * ServiceError (a typed protocol error) is never retried — the request
//     failed for a reason retrying cannot fix — with one wrinkle: a
//     rejected edit batch may be *partially* applied server-side, so the
//     handle drops the batch from its journal and marks the server session
//     poisoned; the next operation rebuilds it from the clean journal.
//
// Request ids keep increasing monotonically across reconnects (the id
// stream is carried over), so server logs show one coherent client.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "util/fault_socket.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace xtalk::service {

struct RetryPolicy {
  /// Transport attempts per operation (connect + exchange = one attempt).
  int max_attempts = 6;
  /// Backoff before attempt k (k ≥ 1): min(base << (k-1), max), jittered.
  int base_backoff_ms = 5;
  int max_backoff_ms = 500;
  /// Jitter fraction: the delay is scaled by a uniform draw from
  /// [1 - jitter/2, 1 + jitter/2]. Deterministic via `seed`.
  double jitter = 0.5;
  /// Seed for the jitter stream (deterministic tests pin it).
  std::uint64_t seed = 1;
  /// Per-request read deadline handed to the underlying client; 0 = none.
  int read_timeout_ms = 10000;
};

/// Local resilience counters (client side; cheap, no locking — one
/// ResilientClient is single-threaded like XtalkClient).
struct ResilienceStats {
  std::uint64_t attempts = 0;    ///< transport attempts, incl. first tries
  std::uint64_t retries = 0;     ///< attempts that were repeats
  std::uint64_t reconnects = 0;  ///< sockets (re-)established
  std::uint64_t sessions_recovered = 0;  ///< full ECO journal replays
  std::uint64_t sessions_resumed = 0;    ///< token resumes (suffix replays)
  std::vector<double> recovery_ms;       ///< wall time of each recovery
};

class ResilientClient;

/// A recoverable ECO session. Obtained from ResilientClient::eco_open();
/// must not outlive its client. Move-only.
class EcoHandle {
 public:
  EcoHandle() = default;
  EcoHandle(EcoHandle&&) = default;
  EcoHandle& operator=(EcoHandle&&) = default;
  EcoHandle(const EcoHandle&) = delete;
  EcoHandle& operator=(const EcoHandle&) = delete;

  bool open() const { return owner_ != nullptr; }
  /// Batches journaled so far (accepted edits only).
  std::size_t journal_size() const { return journal_.size(); }
  /// Durable resumption token (0 against a volatile server).
  std::uint64_t token() const { return token_; }

  /// Apply one edit batch; journals it on success. Throws ServiceError on
  /// semantic rejection (batch dropped from the journal, session rebuilt on
  /// the next operation), TransportError when the retry budget is spent.
  std::uint32_t edit(const std::vector<EcoOp>& ops);
  /// Incremental re-timing; bitwise equal to a from-scratch run over the
  /// journaled edits, even when recovery replayed them onto a new session.
  RunResultMsg run();
  /// Close the server-side session (a no-op if the connection died, which
  /// already destroyed it).
  void close();

 private:
  friend class ResilientClient;

  ResilientClient* owner_ = nullptr;
  RunSpec spec_;
  std::vector<std::vector<EcoOp>> journal_;
  std::uint32_t session_id_ = 0;
  /// Durable resumption token from eco_open (0 on a volatile server).
  std::uint64_t token_ = 0;
  /// Connection epoch the server-side session lives on; a reconnect bumps
  /// the client epoch, implicitly invalidating every handle.
  std::uint64_t epoch_ = 0;
  /// Set after a rejected batch: server state may hold a partial batch, so
  /// the session must be rebuilt from the journal before further use.
  bool poisoned_ = false;
};

class ResilientClient {
 public:
  /// Connects lazily (first operation). `injector`, when given, arms every
  /// connection this client makes, with `conn` as the schedule filter id.
  ResilientClient(std::uint16_t tcp_port, RetryPolicy policy = {},
                  util::WireLimits limits = {},
                  util::SocketFaultInjector* injector = nullptr,
                  std::int64_t conn = -1);

  // --- idempotent operations (transparent retry) --------------------------
  HelloOkMsg hello();
  void ping();
  RunResultMsg run_sta(const RunSpec& spec);
  EndpointsMsg query_endpoints(const RunSpec& spec);
  SlackMsg query_slack(const SlackQueryMsg& query);
  HealthMsg health();
  StatsMsg server_stats();
  /// Retried like the rest; a connect refusal during retry is treated as
  /// success (the server already closed its listener to drain).
  void shutdown_server();

  // --- recoverable ECO sessions -------------------------------------------
  EcoHandle eco_open(const RunSpec& spec);

  const ResilienceStats& resilience() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  friend class EcoHandle;

  /// Run `op` against a live connection, retrying TransportErrors within
  /// the attempt budget. ServiceError passes through untouched.
  template <typename Fn>
  auto with_retry(Fn&& op) -> decltype(op());

  void ensure_connected();
  void drop_connection();
  void backoff(int attempt);

  /// True when the handle's server-side session is live on the current
  /// connection and not poisoned.
  bool session_live(const EcoHandle& h) const;
  /// Rebuild the server-side session: token resume + suffix replay when the
  /// server still holds the durable record, else fresh open + full journal
  /// replay (timed; counted per path).
  void recover_session(EcoHandle& h);

  std::uint16_t port_;
  RetryPolicy policy_;
  util::WireLimits limits_;
  util::SocketFaultInjector* injector_;
  std::int64_t conn_label_;

  std::unique_ptr<XtalkClient> client_;
  std::uint32_t next_request_id_ = 1;
  std::uint64_t epoch_ = 0;  ///< bumped on every drop_connection()

  util::Rng jitter_rng_;
  ResilienceStats stats_;
};

}  // namespace xtalk::service
