// xtalk_client: command-line client for a running xtalk_serve.
//
//   xtalk_client --socket /tmp/xtalk.sock hello
//   xtalk_client --socket /tmp/xtalk.sock run --mode one-step
//   xtalk_client --tcp-port 7380 endpoints
//   xtalk_client --tcp-port 7380 --retries 5 --timeout-ms 2000 health
//   xtalk_client --socket /tmp/xtalk.sock stats
//   xtalk_client --socket /tmp/xtalk.sock shutdown
//
// Over TCP the client retries idempotent requests through transport faults
// (--retries, exponential backoff) instead of failing on the first torn
// connection; --timeout-ms bounds every blocking read either way.
#include <cstdlib>
#include <iostream>
#include <string>

#include "service/client.hpp"
#include "service/retry.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: xtalk_client [--socket PATH | --tcp-port N] COMMAND\n"
         "  --timeout-ms N            per-read deadline (default 10000 over\n"
         "                            TCP, unbounded on unix sockets)\n"
         "  --retries N               retry budget over TCP (default 5;\n"
         "                            0 = fail on the first fault)\n"
         "commands:\n"
         "  hello                     design summary\n"
         "  ping                      liveness check\n"
         "  run [run options]         full analysis, print summary\n"
         "  endpoints [run options]   all endpoint arrivals of the baseline\n"
         "  health                    load probe (answered on the event\n"
         "                            loop, never queued)\n"
         "  stats                     server counters\n"
         "  shutdown                  graceful drain\n"
         "run options:\n"
         "  --mode M                  best-case | static | worst-case |\n"
         "                            one-step | iterative (default one-step)\n"
         "  --nldm                    table delay model\n"
         "  --deadline-ms X           per-request deadline budget\n"
         "  --max-calcs N             per-request waveform-calc budget\n"
         "  --trace PATH              write a Chrome trace server-side\n";
}

xtalk::sta::AnalysisMode parse_mode(const std::string& m) {
  using xtalk::sta::AnalysisMode;
  if (m == "best-case") return AnalysisMode::kBestCase;
  if (m == "static") return AnalysisMode::kStaticDoubled;
  if (m == "worst-case") return AnalysisMode::kWorstCase;
  if (m == "one-step") return AnalysisMode::kOneStep;
  if (m == "iterative") return AnalysisMode::kIterative;
  throw std::runtime_error("unknown mode " + m);
}

// The two client flavors agree on every method except the stats name.
xtalk::service::StatsMsg get_stats(xtalk::service::XtalkClient& c) {
  return c.stats();
}
xtalk::service::StatsMsg get_stats(xtalk::service::ResilientClient& c) {
  return c.server_stats();
}
void do_shutdown(xtalk::service::XtalkClient& c) { c.shutdown_server(); }
void do_shutdown(xtalk::service::ResilientClient& c) { c.shutdown_server(); }

/// Dispatch `command` against either client flavor.
template <typename Client>
int run_command(Client& client, const std::string& command,
                const xtalk::service::RunSpec& spec) {
  using namespace xtalk;
  if (command == "hello") {
    const service::HelloOkMsg m = client.hello();
    std::cout << "design " << m.design_name << ": " << m.num_gates
              << " gates, " << m.num_nets << " nets, " << m.num_levels
              << " levels (protocol v" << m.protocol_version << ")\n";
  } else if (command == "ping") {
    client.ping();
    std::cout << "pong\n";
  } else if (command == "run") {
    const service::RunResultMsg m = client.run_sta(spec);
    std::cout << "longest path delay: " << m.longest_path_delay * 1e9
              << " ns (net " << m.critical.net << ", "
              << (m.critical.rising ? "rising" : "falling") << ")\n"
              << "passes: " << m.passes
              << ", waveform calcs: " << m.waveform_calculations
              << ", runtime: " << m.runtime_seconds << " s\n";
    if (m.budget_exhausted) {
      std::cout << "TRUNCATED (conservative="
                << (m.conservative ? "yes" : "no") << ", "
                << m.untimed_endpoints.size() << " untimed endpoints)\n";
    }
    if (!m.trace_path.empty())
      std::cout << "trace written to " << m.trace_path << "\n";
  } else if (command == "endpoints") {
    const service::EndpointsMsg m = client.query_endpoints(spec);
    for (const service::WireEndpoint& e : m.endpoints) {
      std::cout << "net " << e.net << (e.rising ? " r " : " f ")
                << e.arrival * 1e9 << " ns\n";
    }
    std::cout << "longest path delay: " << m.longest_path_delay * 1e9
              << " ns\n";
  } else if (command == "health") {
    const service::HealthMsg h = client.health();
    std::cout << (h.accepting ? "accepting" : "draining") << " (protocol v"
              << h.protocol_version << ")\n"
              << "connections: " << h.connections
              << ", queue depth: " << h.queue_depth << "/"
              << h.soft_queue_limit
              << (h.clamping ? " (clamping budgets)" : "") << "\n"
              << "eco sessions open: " << h.eco_sessions_open
              << ", outbox backlog: " << h.outbox_bytes << " bytes\n"
              << "durability: generation " << h.restart_generation
              << ", snapshot age " << h.snapshot_age_ms << " ms, WAL records "
              << h.wal_records << "\n";
  } else if (command == "stats") {
    const service::StatsMsg s = get_stats(client);
    std::cout << "requests: " << s.requests_total << " total, "
              << s.requests_ok << " ok, " << s.requests_error << " error, "
              << s.requests_truncated << " truncated, "
              << s.requests_degraded_admission << " degraded\n"
              << "eco sessions open: " << s.eco_sessions_open << " (reaped "
              << s.eco_sessions_reaped << "), connections: "
              << s.connections_total << " (evicted " << s.connections_evicted
              << ")\n"
              << "bytes in/out: " << s.bytes_in << "/" << s.bytes_out
              << ", queue peak: " << s.queue_peak << ", uptime: "
              << s.uptime_seconds << " s\n"
              << "durability: generation " << s.restart_generation
              << ", snapshot age " << s.snapshot_age_ms << " ms, WAL records "
              << s.wal_records << ", sessions resumed "
              << s.eco_sessions_resumed << "\n";
  } else if (command == "shutdown") {
    do_shutdown(client);
    std::cout << "server draining\n";
  } else {
    std::cerr << "unknown command " << command << "\n";
    usage();
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xtalk;

  std::string socket_path = "/tmp/xtalk.sock";
  bool use_tcp = false;
  std::uint16_t tcp_port = 0;
  int timeout_ms = -1;  // -1 = flavor default
  int retries = 5;
  std::string command;
  service::RunSpec spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--tcp-port") {
      use_tcp = true;
      tcp_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::stoi(value());
    } else if (arg == "--retries") {
      retries = std::stoi(value());
    } else if (arg == "--mode") {
      spec.mode = parse_mode(value());
    } else if (arg == "--nldm") {
      spec.delay_model = sta::DelayModel::kNldm;
    } else if (arg == "--deadline-ms") {
      spec.deadline_ms = std::stod(value());
    } else if (arg == "--max-calcs") {
      spec.max_waveform_calcs = std::stoul(value());
    } else if (arg == "--trace") {
      spec.trace_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (command.empty() && arg[0] != '-') {
      command = arg;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (command.empty()) {
    usage();
    return 2;
  }

  try {
    if (use_tcp) {
      service::RetryPolicy policy;
      policy.max_attempts = std::max(1, retries + 1);
      policy.read_timeout_ms = timeout_ms >= 0 ? timeout_ms : 10000;
      service::ResilientClient client(tcp_port, policy);
      return run_command(client, command, spec);
    }
    service::XtalkClient client = service::XtalkClient::connect_unix(socket_path);
    if (timeout_ms >= 0) client.set_read_timeout_ms(timeout_ms);
    return run_command(client, command, spec);
  } catch (const std::exception& e) {
    std::cerr << "xtalk_client: " << e.what() << "\n";
    return 1;
  }
}
