#include "service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace xtalk::service {

// ---------------------------------------------------------------------------
// ResilientClient plumbing
// ---------------------------------------------------------------------------

ResilientClient::ResilientClient(std::uint16_t tcp_port, RetryPolicy policy,
                                 util::WireLimits limits,
                                 util::SocketFaultInjector* injector,
                                 std::int64_t conn)
    : port_(tcp_port),
      policy_(policy),
      limits_(limits),
      injector_(injector),
      conn_label_(conn),
      jitter_rng_(policy.seed) {}

void ResilientClient::ensure_connected() {
  if (client_ != nullptr && client_->fault_socket().valid()) return;
  client_.reset();
  XtalkClient fresh =
      XtalkClient::connect_tcp(port_, limits_, injector_, conn_label_);
  fresh.set_read_timeout_ms(policy_.read_timeout_ms);
  fresh.set_next_request_id(next_request_id_);
  client_ = std::make_unique<XtalkClient>(std::move(fresh));
  ++epoch_;  // every connection is a new epoch; old ECO sessions are dead
  ++stats_.reconnects;
}

void ResilientClient::drop_connection() {
  if (client_ == nullptr) return;
  // Carry the id stream across the reconnect; also discards the socket
  // outright — after a timeout a stale response may still be in flight, and
  // pairing it with the next request would silently corrupt the stream.
  next_request_id_ = client_->next_request_id();
  client_.reset();
}

void ResilientClient::backoff(int attempt) {
  const int shift = std::min(attempt, 20);
  double delay_ms = static_cast<double>(
      std::min<std::int64_t>(static_cast<std::int64_t>(policy_.base_backoff_ms)
                                 << shift,
                             policy_.max_backoff_ms));
  // Deterministic jitter: decorrelates a fleet of clients retrying into the
  // same recovering server without sacrificing test reproducibility.
  delay_ms *= 1.0 - policy_.jitter / 2.0 + policy_.jitter * jitter_rng_.next_double();
  if (delay_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(delay_ms * 1000.0)));
}

template <typename Fn>
auto ResilientClient::with_retry(Fn&& op) -> decltype(op()) {
  for (int attempt = 0;; ++attempt) {
    try {
      ++stats_.attempts;
      if (attempt > 0) ++stats_.retries;
      ensure_connected();
      return op();
    } catch (const TransportError&) {
      drop_connection();
      if (attempt + 1 >= policy_.max_attempts) throw;
      backoff(attempt);
    }
  }
}

// ---------------------------------------------------------------------------
// Idempotent operations
// ---------------------------------------------------------------------------

HelloOkMsg ResilientClient::hello() {
  return with_retry([&] { return client_->hello(); });
}

void ResilientClient::ping() {
  with_retry([&] {
    client_->ping();
    return 0;
  });
}

RunResultMsg ResilientClient::run_sta(const RunSpec& spec) {
  return with_retry([&] { return client_->run_sta(spec); });
}

EndpointsMsg ResilientClient::query_endpoints(const RunSpec& spec) {
  return with_retry([&] { return client_->query_endpoints(spec); });
}

SlackMsg ResilientClient::query_slack(const SlackQueryMsg& query) {
  return with_retry([&] { return client_->query_slack(query); });
}

HealthMsg ResilientClient::health() {
  return with_retry([&] { return client_->health(); });
}

StatsMsg ResilientClient::server_stats() {
  return with_retry([&] { return client_->stats(); });
}

void ResilientClient::shutdown_server() {
  try {
    with_retry([&] {
      client_->shutdown_server();
      return 0;
    });
  } catch (const TransportError& e) {
    // The ack can be lost after the drain started; once the listener is
    // closed every reconnect is refused. That refusal IS the confirmation.
    if (e.kind() == TransportFailure::kConnectRefused) return;
    throw;
  }
}

// ---------------------------------------------------------------------------
// ECO sessions
// ---------------------------------------------------------------------------

bool ResilientClient::session_live(const EcoHandle& h) const {
  return client_ != nullptr && h.epoch_ == epoch_ && !h.poisoned_;
}

void ResilientClient::recover_session(EcoHandle& h) {
  const auto t0 = std::chrono::steady_clock::now();
  bool resumed = false;
  // Resume-first: the durable server may still hold the session (detached
  // when the old connection died, or rebuilt from its WAL after a restart).
  // A poisoned handle never resumes — the server-side state may carry a
  // partially applied batch the journal does not, so only a fresh session
  // is trustworthy.
  if (h.token_ != 0 && !h.poisoned_) {
    try {
      const EcoResumedMsg r = client_->eco_resume(h.token_);
      h.session_id_ = r.session_id;
      // Replay only the suffix the server never acknowledged durably; the
      // 1-based batch_seq keeps the replay exactly-once even if this path
      // itself gets interrupted and retried.
      for (std::size_t i = r.applied_seq; i < h.journal_.size(); ++i) {
        client_->eco_edit(h.session_id_, h.journal_[i], i + 1);
      }
      resumed = true;
    } catch (const ServiceError&) {
      // Token unknown (reaped, closed, or the open's ack never made it) or
      // still attached elsewhere: fall back to a fresh session below.
    }
  }
  if (!resumed) {
    const EcoOpenedMsg opened = client_->eco_open(h.spec_);
    h.session_id_ = opened.session_id;
    h.token_ = opened.token;
    for (std::size_t i = 0; i < h.journal_.size(); ++i) {
      client_->eco_edit(h.session_id_, h.journal_[i], i + 1);
    }
  }
  h.epoch_ = epoch_;
  h.poisoned_ = false;
  if (resumed) {
    ++stats_.sessions_resumed;
  } else {
    ++stats_.sessions_recovered;
  }
  stats_.recovery_ms.push_back(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

EcoHandle ResilientClient::eco_open(const RunSpec& spec) {
  EcoHandle h;
  h.owner_ = this;
  h.spec_ = spec;
  with_retry([&] {
    const EcoOpenedMsg opened = client_->eco_open(spec);
    h.session_id_ = opened.session_id;
    h.token_ = opened.token;
    h.epoch_ = epoch_;
    return 0;
  });
  return h;
}

std::uint32_t EcoHandle::edit(const std::vector<EcoOp>& ops) {
  ResilientClient& c = *owner_;
  // Journal BEFORE sending: if the ack is torn off the wire, the batch's
  // fate is unknown — but since a lost connection also destroys the
  // server-side session, replaying the full journal (this batch included)
  // onto a fresh session reconstructs exactly the acknowledged state.
  journal_.push_back(ops);
  const std::uint64_t batch_seq = journal_.size();  // 1-based batch index
  try {
    return c.with_retry([&]() -> std::uint32_t {
      if (!c.session_live(*this)) {
        // Replay applied every journaled batch, including the new one.
        c.recover_session(*this);
        return static_cast<std::uint32_t>(ops.size());
      }
      return c.client_->eco_edit(session_id_, ops, batch_seq);
    });
  } catch (const ServiceError&) {
    // Semantic rejection: the server may hold a PARTIALLY applied batch
    // (its contract reports "applied K of N" and keeps K). Drop the batch
    // from the journal and poison the session so the next operation
    // rebuilds clean state from accepted batches only — atomic batch
    // semantics on top of a non-atomic server.
    journal_.pop_back();
    poisoned_ = true;
    throw;
  }
}

RunResultMsg EcoHandle::run() {
  ResilientClient& c = *owner_;
  return c.with_retry([&] {
    if (!c.session_live(*this)) c.recover_session(*this);
    return c.client_->eco_run(session_id_);
  });
}

void EcoHandle::close() {
  if (owner_ == nullptr) return;
  ResilientClient& c = *owner_;
  owner_ = nullptr;
  if (c.client_ == nullptr || epoch_ != c.epoch_) {
    // The connection the session lived on is gone, and the server reaped
    // the session with it; nothing to close.
    return;
  }
  try {
    c.client_->eco_close(session_id_);
  } catch (const TransportError&) {
    // Connection died delivering the close — which closes the session.
    c.drop_connection();
  } catch (const ServiceError& e) {
    if (e.code() != ErrorCode::kUnknownSession) throw;
  }
}

}  // namespace xtalk::service
