#include "service/client.hpp"

#include <utility>

#include "util/diag.hpp"

namespace xtalk::service {

namespace {

[[noreturn]] void throw_transport(TransportFailure kind,
                                  const std::string& message) {
  throw TransportError(kind, message);
}

}  // namespace

const char* transport_failure_name(TransportFailure f) {
  switch (f) {
    case TransportFailure::kTimeout:
      return "timeout";
    case TransportFailure::kConnectionLost:
      return "connection-lost";
    case TransportFailure::kConnectRefused:
      return "connect-refused";
    case TransportFailure::kProtocol:
      return "protocol";
  }
  return "unknown";
}

util::WireReader FrameView::body(const util::WireLimits& limits) const {
  util::WireReader r(payload.data(), payload.size(), limits);
  MsgType t;
  std::uint32_t id = 0;
  read_prologue(r, &t, &id);  // cannot fail: FrameView was built from it
  return r;
}

XtalkClient::XtalkClient(util::Socket sock, util::WireLimits limits)
    : sock_(util::FaultSocket(std::move(sock))), limits_(limits) {}

XtalkClient::XtalkClient(util::FaultSocket sock, util::WireLimits limits)
    : sock_(std::move(sock)), limits_(limits) {}

XtalkClient XtalkClient::connect_unix(const std::string& path,
                                      util::WireLimits limits) {
  try {
    return XtalkClient(util::connect_unix(path), limits);
  } catch (const util::DiagError& e) {
    throw_transport(TransportFailure::kConnectRefused, e.diagnostic().message);
  }
}

XtalkClient XtalkClient::connect_tcp(std::uint16_t port,
                                     util::WireLimits limits,
                                     util::SocketFaultInjector* injector,
                                     std::int64_t conn) {
  try {
    return XtalkClient(util::fault_connect_tcp_loopback(port, injector, conn),
                       limits);
  } catch (const util::DiagError& e) {
    throw_transport(TransportFailure::kConnectRefused, e.diagnostic().message);
  }
}

void XtalkClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  try {
    sock_.send_all(bytes.data(), bytes.size());
  } catch (const util::DiagError& e) {
    throw_transport(TransportFailure::kConnectionLost, e.diagnostic().message);
  }
}

void XtalkClient::send_frame(MsgType type, std::uint32_t request_id,
                             const util::WireWriter& body) {
  send_raw(make_frame(type, request_id, body));
}

FrameView XtalkClient::recv_frame() {
  std::uint8_t header[kFrameHeaderBytes];
  std::string error;
  switch (sock_.recv_exact_deadline(header, sizeof header, read_timeout_ms_,
                                    &error)) {
    case util::RecvOutcome::kOk:
      break;
    case util::RecvOutcome::kTimeout:
      throw_transport(TransportFailure::kTimeout,
                      "no response header within " +
                          std::to_string(read_timeout_ms_) + " ms");
    case util::RecvOutcome::kClosed:
    case util::RecvOutcome::kError:
      throw_transport(TransportFailure::kConnectionLost, error);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > limits_.max_frame_bytes) {
    throw_transport(TransportFailure::kProtocol,
                    "response frame length " + std::to_string(len) +
                        " exceeds limit");
  }
  FrameView frame;
  frame.payload.resize(len);
  if (len > 0) {
    switch (sock_.recv_exact_deadline(frame.payload.data(), len,
                                      read_timeout_ms_, &error)) {
      case util::RecvOutcome::kOk:
        break;
      case util::RecvOutcome::kTimeout:
        throw_transport(TransportFailure::kTimeout,
                        "response payload stalled past " +
                            std::to_string(read_timeout_ms_) + " ms");
      case util::RecvOutcome::kClosed:
      case util::RecvOutcome::kError:
        throw_transport(TransportFailure::kConnectionLost, error);
    }
  }
  util::WireReader r(frame.payload.data(), frame.payload.size(), limits_);
  if (!read_prologue(r, &frame.type, &frame.request_id)) {
    throw_transport(TransportFailure::kProtocol,
                    "unparseable response prologue: " + r.error());
  }
  return frame;
}

FrameView XtalkClient::transact(MsgType request, const util::WireWriter& body,
                                MsgType expected_response) {
  const std::uint32_t id = next_request_id_++;
  send_frame(request, id, body);
  FrameView frame = recv_frame();
  if (frame.request_id != id) {
    throw_transport(TransportFailure::kProtocol,
                    "response id " + std::to_string(frame.request_id) +
                        " does not match request id " + std::to_string(id));
  }
  if (frame.type == MsgType::kError) {
    util::WireReader r = frame.body(limits_);
    ErrorMsg err;
    if (!err.decode(r)) {
      throw_transport(TransportFailure::kProtocol,
                      "undecodable error response: " + r.error());
    }
    throw ServiceError(err.code, err.message);
  }
  if (frame.type != expected_response) {
    throw_transport(TransportFailure::kProtocol,
                    std::string("unexpected response type ") +
                        msg_type_name(frame.type) + " (wanted " +
                        msg_type_name(expected_response) + ")");
  }
  return frame;
}

namespace {

/// Decode a typed response body or throw (the server encoded it, so a
/// failure here is a client/server version mismatch, not peer hostility).
template <typename Msg>
Msg decode_body(const FrameView& frame, const util::WireLimits& limits) {
  util::WireReader r = frame.body(limits);
  Msg m;
  if (!m.decode(r) || !r.finish()) {
    throw_transport(TransportFailure::kProtocol,
                    "undecodable response body: " + r.error());
  }
  return m;
}

}  // namespace

HelloOkMsg XtalkClient::hello() {
  HelloMsg msg;
  util::WireWriter body;
  msg.encode(body);
  return decode_body<HelloOkMsg>(
      transact(MsgType::kHello, body, MsgType::kHelloOk), limits_);
}

void XtalkClient::ping() {
  transact(MsgType::kPing, util::WireWriter{}, MsgType::kPong);
}

RunResultMsg XtalkClient::run_sta(const RunSpec& spec) {
  util::WireWriter body;
  spec.encode(body);
  return decode_body<RunResultMsg>(
      transact(MsgType::kRunSta, body, MsgType::kRunResult), limits_);
}

EndpointsMsg XtalkClient::query_endpoints(const RunSpec& spec) {
  util::WireWriter body;
  spec.encode(body);
  return decode_body<EndpointsMsg>(
      transact(MsgType::kQueryEndpoints, body, MsgType::kEndpoints), limits_);
}

SlackMsg XtalkClient::query_slack(const SlackQueryMsg& query) {
  util::WireWriter body;
  query.encode(body);
  return decode_body<SlackMsg>(
      transact(MsgType::kQuerySlack, body, MsgType::kSlack), limits_);
}

HealthMsg XtalkClient::health() {
  return decode_body<HealthMsg>(
      transact(MsgType::kHealth, util::WireWriter{}, MsgType::kHealthOk),
      limits_);
}

EcoOpenedMsg XtalkClient::eco_open(const RunSpec& spec) {
  util::WireWriter body;
  spec.encode(body);
  return decode_body<EcoOpenedMsg>(
      transact(MsgType::kEcoOpen, body, MsgType::kEcoOpened), limits_);
}

EcoResumedMsg XtalkClient::eco_resume(std::uint64_t token) {
  EcoResumeMsg msg;
  msg.token = token;
  util::WireWriter body;
  msg.encode(body);
  return decode_body<EcoResumedMsg>(
      transact(MsgType::kEcoResume, body, MsgType::kEcoResumed), limits_);
}

std::uint32_t XtalkClient::eco_edit(std::uint32_t session_id,
                                    const std::vector<EcoOp>& ops,
                                    std::uint64_t batch_seq) {
  EcoEditMsg msg;
  msg.session_id = session_id;
  msg.batch_seq = batch_seq;
  msg.ops = ops;
  util::WireWriter body;
  msg.encode(body);
  FrameView frame = transact(MsgType::kEcoEdit, body, MsgType::kEcoEditOk);
  util::WireReader r = frame.body(limits_);
  std::uint32_t applied = 0;
  if (!r.u32(&applied) || !r.finish()) {
    throw_transport(TransportFailure::kProtocol,
                    "undecodable EcoEditOk body: " + r.error());
  }
  return applied;
}

RunResultMsg XtalkClient::eco_run(std::uint32_t session_id) {
  util::WireWriter body;
  body.u32(session_id);
  return decode_body<RunResultMsg>(
      transact(MsgType::kEcoRun, body, MsgType::kRunResult), limits_);
}

void XtalkClient::eco_close(std::uint32_t session_id) {
  util::WireWriter body;
  body.u32(session_id);
  transact(MsgType::kEcoClose, body, MsgType::kEcoClosed);
}

StatsMsg XtalkClient::stats() {
  return decode_body<StatsMsg>(
      transact(MsgType::kGetStats, util::WireWriter{}, MsgType::kStats),
      limits_);
}

void XtalkClient::shutdown_server() {
  transact(MsgType::kShutdown, util::WireWriter{}, MsgType::kShutdownOk);
}

}  // namespace xtalk::service
