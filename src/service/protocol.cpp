#include "service/protocol.hpp"

#include <utility>

namespace xtalk::service {

namespace {

/// Highest valid enum values for range-checked decodes.
constexpr std::uint8_t kNumAnalysisModes = 5;
constexpr std::uint8_t kNumDelayModels = 2;
constexpr std::uint8_t kNumSchedulers = 3;
constexpr std::uint8_t kNumFaultPolicies = 2;
constexpr std::uint8_t kNumBudgetPolicies = 2;
constexpr std::uint8_t kNumEcoOps = 6;
constexpr std::uint8_t kNumErrorCodes = 8;

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kPing: return "ping";
    case MsgType::kRunSta: return "run-sta";
    case MsgType::kQueryEndpoints: return "query-endpoints";
    case MsgType::kQuerySlack: return "query-slack";
    case MsgType::kEcoOpen: return "eco-open";
    case MsgType::kEcoEdit: return "eco-edit";
    case MsgType::kEcoRun: return "eco-run";
    case MsgType::kEcoClose: return "eco-close";
    case MsgType::kGetStats: return "get-stats";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHealth: return "health";
    case MsgType::kEcoResume: return "eco-resume";
    case MsgType::kHelloOk: return "hello-ok";
    case MsgType::kPong: return "pong";
    case MsgType::kRunResult: return "run-result";
    case MsgType::kEndpoints: return "endpoints";
    case MsgType::kSlack: return "slack";
    case MsgType::kEcoOpened: return "eco-opened";
    case MsgType::kEcoEditOk: return "eco-edit-ok";
    case MsgType::kEcoClosed: return "eco-closed";
    case MsgType::kStats: return "stats";
    case MsgType::kShutdownOk: return "shutdown-ok";
    case MsgType::kHealthOk: return "health-ok";
    case MsgType::kEcoResumed: return "eco-resumed";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnknownSession: return "unknown-session";
    case ErrorCode::kEditRejected: return "edit-rejected";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// HelloMsg
// ---------------------------------------------------------------------------

void HelloMsg::encode(util::WireWriter& w) const { w.u32(protocol_version); }

bool HelloMsg::decode(util::WireReader& r) { return r.u32(&protocol_version); }

// ---------------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------------

sta::StaOptions RunSpec::to_options() const {
  sta::StaOptions o;
  o.mode = mode;
  o.delay_model = delay_model;
  o.scheduler = scheduler;
  o.input_slew = input_slew;
  o.convergence_eps = convergence_eps;
  o.max_passes = max_passes;
  o.esperance = esperance;
  o.esperance_window = esperance_window;
  o.timing_windows = timing_windows;
  o.early.sharp_slew = early_sharp_slew;
  o.early.aiding_coupling_assist = early_aiding_assist;
  o.fault_policy = fault_policy;
  o.budget.deadline_ms = deadline_ms;
  o.budget.max_waveform_calcs = static_cast<std::size_t>(max_waveform_calcs);
  o.budget.policy = budget_policy;
  o.collect_metrics = collect_metrics;
  o.trace_path = trace_path;
  o.coupling_derate = coupling_derate;
  return o;
}

sta::Scenario RunSpec::scenario() const {
  sta::Scenario s;
  s.name = scenario_name;
  s.vdd_scale = vdd_scale;
  s.temperature_c = temperature_c;
  s.coupling_derate = coupling_derate;
  return s;
}

RunSpec RunSpec::from_options(const sta::StaOptions& options) {
  RunSpec s;
  s.mode = options.mode;
  s.delay_model = options.delay_model;
  s.scheduler = options.scheduler;
  s.input_slew = options.input_slew;
  s.convergence_eps = options.convergence_eps;
  s.max_passes = options.max_passes;
  s.esperance = options.esperance;
  s.esperance_window = options.esperance_window;
  s.timing_windows = options.timing_windows;
  s.early_sharp_slew = options.early.sharp_slew;
  s.early_aiding_assist = options.early.aiding_coupling_assist;
  s.fault_policy = options.fault_policy;
  s.deadline_ms = options.budget.deadline_ms;
  s.max_waveform_calcs = options.budget.max_waveform_calcs;
  s.budget_policy = options.budget.policy;
  s.collect_metrics = options.collect_metrics;
  s.trace_path = options.trace_path;
  s.coupling_derate = options.coupling_derate;
  return s;
}

std::string RunSpec::cache_key() const {
  RunSpec numeric = *this;
  numeric.trace_path.clear();
  numeric.collect_metrics = false;
  util::WireWriter w;
  numeric.encode(w);
  return std::string(reinterpret_cast<const char*>(w.data().data()),
                     w.data().size());
}

void RunSpec::encode(util::WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(mode));
  w.u8(static_cast<std::uint8_t>(delay_model));
  w.u8(static_cast<std::uint8_t>(scheduler));
  w.f64(input_slew);
  w.f64(convergence_eps);
  w.i32(max_passes);
  w.boolean(esperance);
  w.f64(esperance_window);
  w.boolean(timing_windows);
  w.f64(early_sharp_slew);
  w.boolean(early_aiding_assist);
  w.u8(static_cast<std::uint8_t>(fault_policy));
  w.f64(deadline_ms);
  w.u64(max_waveform_calcs);
  w.u8(static_cast<std::uint8_t>(budget_policy));
  w.boolean(collect_metrics);
  w.str(trace_path);
  w.str(scenario_name);
  w.f64(vdd_scale);
  w.f64(temperature_c);
  w.f64(coupling_derate);
}

bool RunSpec::decode(util::WireReader& r) {
  std::uint8_t v;
  if (!r.enum8(&v, kNumAnalysisModes)) return false;
  mode = static_cast<sta::AnalysisMode>(v);
  if (!r.enum8(&v, kNumDelayModels)) return false;
  delay_model = static_cast<sta::DelayModel>(v);
  if (!r.enum8(&v, kNumSchedulers)) return false;
  scheduler = static_cast<sta::Scheduler>(v);
  if (!r.f64(&input_slew)) return false;
  if (!r.f64(&convergence_eps)) return false;
  if (!r.i32(&max_passes)) return false;
  if (!r.boolean(&esperance)) return false;
  if (!r.f64(&esperance_window)) return false;
  if (!r.boolean(&timing_windows)) return false;
  if (!r.f64(&early_sharp_slew)) return false;
  if (!r.boolean(&early_aiding_assist)) return false;
  if (!r.enum8(&v, kNumFaultPolicies)) return false;
  fault_policy = static_cast<util::FaultPolicy>(v);
  if (!r.f64(&deadline_ms)) return false;
  if (!r.u64(&max_waveform_calcs)) return false;
  if (!r.enum8(&v, kNumBudgetPolicies)) return false;
  budget_policy = static_cast<util::BudgetPolicy>(v);
  if (!r.boolean(&collect_metrics)) return false;
  if (!r.str(&trace_path)) return false;
  if (!r.str(&scenario_name)) return false;
  if (!r.f64(&vdd_scale)) return false;
  if (!r.f64(&temperature_c)) return false;
  return r.f64(&coupling_derate);
}

// ---------------------------------------------------------------------------
// EcoOp / EcoEditMsg
// ---------------------------------------------------------------------------

void EcoOp::encode(util::WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(gate);
  w.u32(pin);
  w.u32(net_a);
  w.u32(net_b);
  w.f64(value_a);
  w.f64(value_b);
}

bool EcoOp::decode(util::WireReader& r) {
  std::uint8_t v;
  if (!r.enum8(&v, kNumEcoOps)) return false;
  kind = static_cast<Kind>(v);
  if (!r.u32(&gate)) return false;
  if (!r.u32(&pin)) return false;
  if (!r.u32(&net_a)) return false;
  if (!r.u32(&net_b)) return false;
  if (!r.f64(&value_a)) return false;
  return r.f64(&value_b);
}

void EcoEditMsg::encode(util::WireWriter& w) const {
  w.u32(session_id);
  w.u64(batch_seq);
  w.array(ops.size());
  for (const EcoOp& op : ops) op.encode(w);
}

bool EcoEditMsg::decode(util::WireReader& r) {
  if (!r.u32(&session_id)) return false;
  if (!r.u64(&batch_seq)) return false;
  std::uint32_t n;
  if (!r.array(&n, /*min_item_bytes=*/33)) return false;
  ops.resize(n);
  for (EcoOp& op : ops) {
    if (!op.decode(r)) return false;
  }
  return true;
}

void EcoResumeMsg::encode(util::WireWriter& w) const { w.u64(token); }

bool EcoResumeMsg::decode(util::WireReader& r) { return r.u64(&token); }

// ---------------------------------------------------------------------------
// SlackQueryMsg
// ---------------------------------------------------------------------------

void WireScenario::encode(util::WireWriter& w) const {
  w.str(name);
  w.f64(vdd_scale);
  w.f64(temperature_c);
  w.f64(coupling_derate);
  w.boolean(override_mode);
  w.u8(mode);
}

bool WireScenario::decode(util::WireReader& r) {
  if (!r.str(&name)) return false;
  if (!r.f64(&vdd_scale)) return false;
  if (!r.f64(&temperature_c)) return false;
  if (!r.f64(&coupling_derate)) return false;
  if (!r.boolean(&override_mode)) return false;
  return r.enum8(&mode, kNumAnalysisModes);
}

void SlackQueryMsg::encode(util::WireWriter& w) const {
  spec.encode(w);
  w.u32(net);
  w.boolean(rising);
  w.f64(required_time);
  w.array(scenarios.size());
  for (const WireScenario& s : scenarios) s.encode(w);
}

bool SlackQueryMsg::decode(util::WireReader& r) {
  if (!spec.decode(r)) return false;
  if (!r.u32(&net)) return false;
  if (!r.boolean(&rising)) return false;
  if (!r.f64(&required_time)) return false;
  std::uint32_t n;
  if (!r.array(&n, /*min_item_bytes=*/30)) return false;
  scenarios.resize(n);
  for (WireScenario& s : scenarios) {
    if (!s.decode(r)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void EcoOpenedMsg::encode(util::WireWriter& w) const {
  w.u32(session_id);
  w.u64(token);
}

bool EcoOpenedMsg::decode(util::WireReader& r) {
  if (!r.u32(&session_id)) return false;
  return r.u64(&token);
}

void EcoResumedMsg::encode(util::WireWriter& w) const {
  w.u32(session_id);
  w.u64(token);
  w.u64(applied_seq);
}

bool EcoResumedMsg::decode(util::WireReader& r) {
  if (!r.u32(&session_id)) return false;
  if (!r.u64(&token)) return false;
  return r.u64(&applied_seq);
}

void HelloOkMsg::encode(util::WireWriter& w) const {
  w.u32(protocol_version);
  w.str(design_name);
  w.u64(num_gates);
  w.u64(num_nets);
  w.u64(num_levels);
}

bool HelloOkMsg::decode(util::WireReader& r) {
  if (!r.u32(&protocol_version)) return false;
  if (!r.str(&design_name)) return false;
  if (!r.u64(&num_gates)) return false;
  if (!r.u64(&num_nets)) return false;
  return r.u64(&num_levels);
}

namespace {

void encode_endpoint(util::WireWriter& w, const WireEndpoint& e) {
  w.u32(e.net);
  w.boolean(e.rising);
  w.f64(e.arrival);
}

bool decode_endpoint(util::WireReader& r, WireEndpoint* e) {
  if (!r.u32(&e->net)) return false;
  if (!r.boolean(&e->rising)) return false;
  return r.f64(&e->arrival);
}

void encode_endpoints(util::WireWriter& w,
                      const std::vector<WireEndpoint>& eps) {
  w.array(eps.size());
  for (const WireEndpoint& e : eps) encode_endpoint(w, e);
}

bool decode_endpoints(util::WireReader& r, std::vector<WireEndpoint>* eps) {
  std::uint32_t n;
  if (!r.array(&n, /*min_item_bytes=*/13)) return false;
  eps->resize(n);
  for (WireEndpoint& e : *eps) {
    if (!decode_endpoint(r, &e)) return false;
  }
  return true;
}

}  // namespace

void RunResultMsg::encode(util::WireWriter& w) const {
  w.f64(longest_path_delay);
  encode_endpoint(w, critical);
  encode_endpoints(w, endpoints);
  w.i32(passes);
  w.u64(waveform_calculations);
  w.u64(gates_reused);
  w.f64(runtime_seconds);
  w.i32(threads_used);
  w.u8(scheduler);
  w.u64(missing_sink_wires);
  w.boolean(budget_exhausted);
  w.u8(budget_reason);
  w.i32(completed_passes);
  w.u64(completed_levels);
  w.u64(total_levels);
  w.boolean(conservative);
  w.u64(governor_checks);
  w.array(untimed_endpoints.size());
  for (const std::uint32_t n : untimed_endpoints) w.u32(n);
  w.u64(diagnostics_dropped);
  w.array(diagnostics.size());
  for (const WireDiagnostic& d : diagnostics) {
    w.u8(d.code);
    w.u8(d.severity);
    w.i64(d.gate);
    w.i64(d.net);
    w.i32(d.level);
    w.i32(d.pass);
    w.str(d.message);
  }
  w.str(trace_path);
}

bool RunResultMsg::decode(util::WireReader& r) {
  if (!r.f64(&longest_path_delay)) return false;
  if (!decode_endpoint(r, &critical)) return false;
  if (!decode_endpoints(r, &endpoints)) return false;
  if (!r.i32(&passes)) return false;
  if (!r.u64(&waveform_calculations)) return false;
  if (!r.u64(&gates_reused)) return false;
  if (!r.f64(&runtime_seconds)) return false;
  if (!r.i32(&threads_used)) return false;
  if (!r.u8(&scheduler)) return false;
  if (!r.u64(&missing_sink_wires)) return false;
  if (!r.boolean(&budget_exhausted)) return false;
  if (!r.u8(&budget_reason)) return false;
  if (!r.i32(&completed_passes)) return false;
  if (!r.u64(&completed_levels)) return false;
  if (!r.u64(&total_levels)) return false;
  if (!r.boolean(&conservative)) return false;
  if (!r.u64(&governor_checks)) return false;
  std::uint32_t n;
  if (!r.array(&n, /*min_item_bytes=*/4)) return false;
  untimed_endpoints.resize(n);
  for (std::uint32_t& net : untimed_endpoints) {
    if (!r.u32(&net)) return false;
  }
  if (!r.u64(&diagnostics_dropped)) return false;
  if (!r.array(&n, /*min_item_bytes=*/30)) return false;
  diagnostics.resize(n);
  for (WireDiagnostic& d : diagnostics) {
    if (!r.u8(&d.code)) return false;
    if (!r.u8(&d.severity)) return false;
    if (!r.i64(&d.gate)) return false;
    if (!r.i64(&d.net)) return false;
    if (!r.i32(&d.level)) return false;
    if (!r.i32(&d.pass)) return false;
    if (!r.str(&d.message)) return false;
  }
  return r.str(&trace_path);
}

RunResultMsg RunResultMsg::from_result(const sta::StaResult& result) {
  RunResultMsg m;
  m.longest_path_delay = result.longest_path_delay;
  m.critical = {result.critical.net, result.critical.rising,
                result.critical.arrival};
  m.endpoints.reserve(result.endpoints.size());
  for (const sta::EndpointArrival& e : result.endpoints) {
    m.endpoints.push_back({e.net, e.rising, e.arrival});
  }
  m.passes = result.passes;
  m.waveform_calculations = result.waveform_calculations;
  m.gates_reused = result.gates_reused;
  m.runtime_seconds = result.runtime_seconds;
  m.threads_used = result.threads_used;
  m.scheduler = static_cast<std::uint8_t>(result.scheduler);
  m.missing_sink_wires = result.missing_sink_wires;
  m.budget_exhausted = result.budget.exhausted;
  m.budget_reason = static_cast<std::uint8_t>(result.budget.reason);
  m.completed_passes = result.budget.completed_passes;
  m.completed_levels = result.budget.completed_levels;
  m.total_levels = result.budget.total_levels;
  m.conservative = result.budget.conservative;
  m.governor_checks = result.budget.governor_checks;
  m.untimed_endpoints.assign(result.budget.untimed_endpoints.begin(),
                             result.budget.untimed_endpoints.end());
  m.diagnostics_dropped = result.diagnostics.dropped;
  m.diagnostics.reserve(result.diagnostics.entries.size());
  for (const util::Diagnostic& d : result.diagnostics.entries) {
    WireDiagnostic wd;
    wd.code = static_cast<std::uint8_t>(d.code);
    wd.severity = static_cast<std::uint8_t>(d.severity);
    wd.gate = d.ctx.gate;
    wd.net = d.ctx.net;
    wd.level = d.ctx.level;
    wd.pass = d.ctx.pass;
    wd.message = d.message;
    m.diagnostics.push_back(std::move(wd));
  }
  return m;
}

void EndpointsMsg::encode(util::WireWriter& w) const {
  w.f64(longest_path_delay);
  encode_endpoint(w, critical);
  encode_endpoints(w, endpoints);
}

bool EndpointsMsg::decode(util::WireReader& r) {
  if (!r.f64(&longest_path_delay)) return false;
  if (!decode_endpoint(r, &critical)) return false;
  return decode_endpoints(r, &endpoints);
}

void SlackMsg::encode(util::WireWriter& w) const {
  w.boolean(valid);
  w.f64(arrival);
  w.f64(slack);
  w.str(worst_scenario);
}

bool SlackMsg::decode(util::WireReader& r) {
  if (!r.boolean(&valid)) return false;
  if (!r.f64(&arrival)) return false;
  if (!r.f64(&slack)) return false;
  return r.str(&worst_scenario);
}

void StatsMsg::encode(util::WireWriter& w) const {
  w.u64(requests_total);
  w.u64(requests_ok);
  w.u64(requests_error);
  w.u64(requests_truncated);
  w.u64(requests_degraded_admission);
  w.u64(eco_sessions_open);
  w.u64(connections_total);
  w.u64(bytes_in);
  w.u64(bytes_out);
  w.u64(queue_peak);
  w.f64(uptime_seconds);
  w.u64(eco_sessions_reaped);
  w.u64(connections_evicted);
  w.u64(restart_generation);
  w.u64(snapshot_age_ms);
  w.u64(wal_records);
  w.u64(eco_sessions_resumed);
}

bool StatsMsg::decode(util::WireReader& r) {
  if (!r.u64(&requests_total)) return false;
  if (!r.u64(&requests_ok)) return false;
  if (!r.u64(&requests_error)) return false;
  if (!r.u64(&requests_truncated)) return false;
  if (!r.u64(&requests_degraded_admission)) return false;
  if (!r.u64(&eco_sessions_open)) return false;
  if (!r.u64(&connections_total)) return false;
  if (!r.u64(&bytes_in)) return false;
  if (!r.u64(&bytes_out)) return false;
  if (!r.u64(&queue_peak)) return false;
  if (!r.f64(&uptime_seconds)) return false;
  if (!r.u64(&eco_sessions_reaped)) return false;
  if (!r.u64(&connections_evicted)) return false;
  if (!r.u64(&restart_generation)) return false;
  if (!r.u64(&snapshot_age_ms)) return false;
  if (!r.u64(&wal_records)) return false;
  return r.u64(&eco_sessions_resumed);
}

void HealthMsg::encode(util::WireWriter& w) const {
  w.boolean(accepting);
  w.u32(protocol_version);
  w.u64(connections);
  w.u64(queue_depth);
  w.u64(soft_queue_limit);
  w.boolean(clamping);
  w.u64(eco_sessions_open);
  w.u64(outbox_bytes);
  w.u64(restart_generation);
  w.u64(snapshot_age_ms);
  w.u64(wal_records);
}

bool HealthMsg::decode(util::WireReader& r) {
  if (!r.boolean(&accepting)) return false;
  if (!r.u32(&protocol_version)) return false;
  if (!r.u64(&connections)) return false;
  if (!r.u64(&queue_depth)) return false;
  if (!r.u64(&soft_queue_limit)) return false;
  if (!r.boolean(&clamping)) return false;
  if (!r.u64(&eco_sessions_open)) return false;
  if (!r.u64(&outbox_bytes)) return false;
  if (!r.u64(&restart_generation)) return false;
  if (!r.u64(&snapshot_age_ms)) return false;
  return r.u64(&wal_records);
}

void ErrorMsg::encode(util::WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
}

bool ErrorMsg::decode(util::WireReader& r) {
  std::uint8_t v;
  if (!r.enum8(&v, kNumErrorCodes)) return false;
  code = static_cast<ErrorCode>(v);
  return r.str(&message);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> make_frame(MsgType type, std::uint32_t request_id,
                                     const util::WireWriter& body) {
  util::WireWriter payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.u32(request_id);
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + body.size());
  const std::uint32_t len =
      static_cast<std::uint32_t>(payload.size() + body.size());
  frame.push_back(static_cast<std::uint8_t>(len));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.push_back(static_cast<std::uint8_t>(len >> 16));
  frame.push_back(static_cast<std::uint8_t>(len >> 24));
  frame.insert(frame.end(), payload.data().begin(), payload.data().end());
  frame.insert(frame.end(), body.data().begin(), body.data().end());
  return frame;
}

bool read_prologue(util::WireReader& r, MsgType* type,
                   std::uint32_t* request_id) {
  std::uint8_t t;
  if (!r.u8(&t)) return false;
  const bool request_range = t >= 1 && t <= 13;
  const bool response_range = (t >= 64 && t <= 75) || t == 127;
  if (!request_range && !response_range) {
    r.fail("unknown message type " + std::to_string(t));
    return false;
  }
  *type = static_cast<MsgType>(t);
  return r.u32(request_id);
}

std::string qualified_trace_path(const std::string& path,
                                 std::uint64_t request_id) {
  if (path.empty()) return path;
  const std::string suffix = "-req" + std::to_string(request_id);
  const std::string ext = ".json";
  if (path.size() > ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
    return path.substr(0, path.size() - ext.size()) + suffix + ext;
  }
  return path + suffix;
}

}  // namespace xtalk::service
