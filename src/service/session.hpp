// Shared design state of the daemon.
//
// A DesignSession owns the fully-built design (netlist, layout, extracted
// parasitics, device tables — the expensive load happens ONCE, at daemon
// start) and serves it as an immutable base: analysis requests borrow
// DesignViews, ECO sessions overlay it copy-on-write through DesignEditor
// without ever mutating it, and a cache of full-run baselines answers
// endpoint/slack queries without re-running the engine per query.
//
// Concurrency: the design itself is immutable after construction, so any
// number of engines may read it in parallel (the COW overlays guarantee ECO
// sessions never write into shared state — test_concurrent_eco.cpp runs
// this under TSan). The baseline cache is mutex-guarded; a miss computes
// the result while holding the per-session compute lock, which serializes
// *baseline construction* (not request execution) — queries for an already
// cached spec are a lock + shared_ptr copy.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/crosstalk_sta.hpp"
#include "service/protocol.hpp"
#include "sta/incremental/incremental_sta.hpp"
#include "sta/scenario.hpp"
#include "util/persist.hpp"

namespace xtalk::service {

// Snapshot kinds under --state-dir (util::persist snapshot headers).
inline constexpr std::uint16_t kSnapKindGeneration = 1;  ///< u64 restart gen
inline constexpr std::uint16_t kSnapKindBaselines = 2;   ///< memoized RunSpecs
inline constexpr std::uint16_t kSnapKindDesign = 3;      ///< design recipe
/// v2: RunSpec gained the MCMM scenario identity (name, vdd_scale,
/// temperature, coupling derate), changing the encoded baseline/WAL-open
/// payloads. v1 state files load as kVersionSkew and the server starts
/// cold — never a half-decoded spec.
inline constexpr std::uint16_t kSnapVersion = 2;

class DesignSession {
 public:
  DesignSession(core::Design&& design, std::string name);

  const core::Design& design() const { return design_; }
  sta::DesignView view() const { return design_.view(); }
  const std::string& name() const { return name_; }

  /// The cached full-run result for `spec`'s numeric identity, computing it
  /// on `pool` (nullable: engine spawns its own) on first use. The shared
  /// result is immutable; hold the shared_ptr as long as needed.
  std::shared_ptr<const sta::StaResult> baseline(const RunSpec& spec,
                                                 util::ThreadPool* pool);

  /// Number of cached baselines (observability).
  std::size_t baselines_cached() const;

  /// The per-corner device-model context (scaled technology, regridded
  /// tables, NLDM when the spec's delay model needs one) for `spec`'s V/T
  /// corner, built on first use and shared by every baseline and ECO
  /// session at that corner. The nominal corner borrows the base design's
  /// model untouched (pre-v4 behaviour, bitwise).
  std::shared_ptr<const sta::ScenarioContext> corner(const RunSpec& spec);

  /// Number of cached corner contexts (observability).
  std::size_t corners_cached() const;

  /// Crash-only durability: snapshot the set of memoized baseline specs to
  /// `<state_dir>/baselines.snap` on every cache fill, and — right now —
  /// re-warm every spec found in an existing snapshot. Results are not
  /// stored byte-for-byte: the engine is bitwise deterministic, so replaying
  /// the spec reproduces the exact result, and a restarted server answers
  /// queries warm instead of cold.
  void enable_persistence(const std::string& state_dir, bool do_fsync);

  /// Milliseconds since the baseline snapshot was last written (0 when
  /// persistence is off or nothing has been snapshotted yet).
  std::uint64_t snapshot_age_ms() const;

 private:
  void persist_baselines_locked();
  std::shared_ptr<const sta::ScenarioContext> corner_locked(
      const RunSpec& spec);

  core::Design design_;
  std::string name_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const sta::StaResult>> baselines_;
  std::map<std::string, RunSpec> baseline_specs_;  ///< cache_key → spec
  /// Corner contexts keyed on (V/T bits, needs-NLDM); immutable once built.
  std::map<std::pair<sta::CornerKey, bool>,
           std::shared_ptr<const sta::ScenarioContext>>
      corners_;
  std::string snapshot_path_;  ///< empty = persistence off
  bool fsync_ = true;
  std::atomic<std::int64_t> last_snapshot_steady_ms_{-1};
};

/// One client ECO session: a COW editor over the shared base plus the
/// incremental re-timing session that replays cached passes. Owned by the
/// connection that opened it; never shared across connections.
struct EcoSession {
  explicit EcoSession(DesignSession& base, const RunSpec& spec,
                      util::ThreadPool* pool,
                      util::CancelToken* cancel = nullptr);

  RunSpec spec;
  /// Keeps this session's V/T corner model alive (shared with the base
  /// session's corner cache; the editor's COW view borrows its tables).
  std::shared_ptr<const sta::ScenarioContext> corner;
  std::unique_ptr<sta::incremental::DesignEditor> editor;
  std::unique_ptr<sta::incremental::IncrementalSta> sta;
  /// Durable identity (0 on a volatile server): survives connection loss
  /// and server restart; clients re-bind with kEcoResume.
  std::uint64_t token = 0;
  /// Highest acknowledged (WAL-durable) batch_seq.
  std::uint64_t applied_seq = 0;
};

// ---------------------------------------------------------------------------
// Server-side session WAL records
// ---------------------------------------------------------------------------

/// Record types in `<state_dir>/sessions.wal`. Append only.
enum class WalRecordType : std::uint16_t {
  kSessionOpen = 1,   ///< u64 token + RunSpec
  kSessionEdit = 2,   ///< u64 token + u64 batch_seq + EcoOp array
  kSessionClose = 3,  ///< u64 token
};

/// The durable mirror of one ECO session: everything needed to rebuild the
/// live COW editor + incremental engine by deterministic replay.
struct SessionRecord {
  std::uint64_t token = 0;
  RunSpec spec;
  std::vector<std::vector<EcoOp>> batches;  ///< batch i carries seq i+1
  std::uint64_t applied_seq = 0;            ///< == batches.size()
};

std::vector<std::uint8_t> encode_wal_open(std::uint64_t token,
                                          const RunSpec& spec);
std::vector<std::uint8_t> encode_wal_edit(std::uint64_t token,
                                          std::uint64_t batch_seq,
                                          const std::vector<EcoOp>& ops);
std::vector<std::uint8_t> encode_wal_close(std::uint64_t token);

/// Fold replayed WAL records into the live session set (open starts a
/// record, edits accumulate, close erases). Records that fail to decode are
/// skipped — a hostile or skewed state file degrades to fewer sessions,
/// never to wrong ones.
std::map<std::uint64_t, SessionRecord> fold_session_wal(
    const std::vector<util::WalRecord>& records);

/// Re-encode the live set as a minimal record list (compaction).
std::vector<util::WalRecord> compact_session_wal(
    const std::map<std::uint64_t, SessionRecord>& live);

}  // namespace xtalk::service
