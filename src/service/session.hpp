// Shared design state of the daemon.
//
// A DesignSession owns the fully-built design (netlist, layout, extracted
// parasitics, device tables — the expensive load happens ONCE, at daemon
// start) and serves it as an immutable base: analysis requests borrow
// DesignViews, ECO sessions overlay it copy-on-write through DesignEditor
// without ever mutating it, and a cache of full-run baselines answers
// endpoint/slack queries without re-running the engine per query.
//
// Concurrency: the design itself is immutable after construction, so any
// number of engines may read it in parallel (the COW overlays guarantee ECO
// sessions never write into shared state — test_concurrent_eco.cpp runs
// this under TSan). The baseline cache is mutex-guarded; a miss computes
// the result while holding the per-session compute lock, which serializes
// *baseline construction* (not request execution) — queries for an already
// cached spec are a lock + shared_ptr copy.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/crosstalk_sta.hpp"
#include "service/protocol.hpp"
#include "sta/incremental/incremental_sta.hpp"

namespace xtalk::service {

class DesignSession {
 public:
  DesignSession(core::Design&& design, std::string name);

  const core::Design& design() const { return design_; }
  sta::DesignView view() const { return design_.view(); }
  const std::string& name() const { return name_; }

  /// The cached full-run result for `spec`'s numeric identity, computing it
  /// on `pool` (nullable: engine spawns its own) on first use. The shared
  /// result is immutable; hold the shared_ptr as long as needed.
  std::shared_ptr<const sta::StaResult> baseline(const RunSpec& spec,
                                                 util::ThreadPool* pool);

  /// Number of cached baselines (observability).
  std::size_t baselines_cached() const;

 private:
  core::Design design_;
  std::string name_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const sta::StaResult>> baselines_;
};

/// One client ECO session: a COW editor over the shared base plus the
/// incremental re-timing session that replays cached passes. Owned by the
/// connection that opened it; never shared across connections.
struct EcoSession {
  explicit EcoSession(const DesignSession& base, const RunSpec& spec,
                      util::ThreadPool* pool,
                      util::CancelToken* cancel = nullptr);

  RunSpec spec;
  std::unique_ptr<sta::incremental::DesignEditor> editor;
  std::unique_ptr<sta::incremental::IncrementalSta> sta;
};

}  // namespace xtalk::service
