#include "device/device_table.hpp"

#include <algorithm>

namespace xtalk::device {

namespace {

constexpr std::size_t kMaxStack = 6;

/// Top-terminal voltage of an n-deep equal-width stack carrying current i
/// (unit width, all gates at vdd, bottom at ground). Monotone increasing
/// in i; returns > vdd if the stack cannot carry i.
double stack_top_voltage(const Technology& tech, MosType type, std::size_t n,
                         double i) {
  double v = 0.0;  // source potential of the current device
  for (std::size_t d = 0; d < n; ++d) {
    const double vgs = tech.vdd - v;
    // Find vds with unit_current(vgs, vds) == i by bisection.
    double lo = 0.0, hi = tech.vdd;
    if (unit_current(tech, type, vgs, hi) < i) return 2.0 * tech.vdd;
    for (int it = 0; it < 50; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (unit_current(tech, type, vgs, mid) < i) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    v += 0.5 * (lo + hi);
  }
  return v;
}

/// I_stack(n) / I_single with the stack's top terminal at vdd/2.
double compute_stack_factor(const Technology& tech, MosType type,
                            std::size_t n) {
  const double i_single = unit_current(tech, type, tech.vdd, tech.vdd / 2.0);
  double lo = 0.0, hi = i_single;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (stack_top_voltage(tech, type, n, mid) < tech.vdd / 2.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi) / i_single;
}

}  // namespace

DeviceTable::DeviceTable(const Technology& tech, MosType type) : type_(type) {
  // Sample a bit beyond the rails so that small numerical overshoot during
  // transient integration still lands inside the grid (clamped outside).
  const double vmax = 1.25 * tech.vdd;
  vmax_ = vmax;
  const std::size_t n = tech.table_points;
  table_ = util::Table2D(0.0, vmax, n, 0.0, vmax, n,
                         [&tech, type](double vgs, double vds) {
                           return unit_current(tech, type, vgs, vds);
                         });
  stack_factors_.reserve(kMaxStack);
  for (std::size_t k = 1; k <= kMaxStack; ++k) {
    stack_factors_.push_back(compute_stack_factor(tech, type, k));
  }
}

double DeviceTable::stack_factor(std::size_t n) const {
  if (n == 0) return 1.0;
  return stack_factors_[std::min(n, stack_factors_.size()) - 1];
}

double DeviceTable::channel_current(double width, double vg, double va,
                                    double vb) const {
  if (type_ == MosType::kNmos) {
    if (va >= vb) return width * table_.lookup(vg - vb, va - vb);
    return -width * table_.lookup(vg - va, vb - va);
  }
  // PMOS: the higher-potential terminal is the source; conducts when the
  // gate is below the source.
  if (va >= vb) return width * table_.lookup(va - vg, va - vb);
  return -width * table_.lookup(vb - vg, vb - va);
}

CurrentDerivs DeviceTable::channel_current_derivs(double width, double vg,
                                                  double va, double vb) const {
  CurrentDerivs d;
  if (type_ == MosType::kNmos) {
    if (va >= vb) {
      const double vgs = vg - vb, vds = va - vb;
      const double fx = table_.d_dx(vgs, vds), fy = table_.d_dy(vgs, vds);
      d.i = width * table_.lookup(vgs, vds);
      d.d_vg = width * fx;
      d.d_va = width * fy;
      d.d_vb = -width * (fx + fy);
    } else {
      const double vgs = vg - va, vds = vb - va;
      const double fx = table_.d_dx(vgs, vds), fy = table_.d_dy(vgs, vds);
      d.i = -width * table_.lookup(vgs, vds);
      d.d_vg = -width * fx;
      d.d_vb = -width * fy;
      d.d_va = width * (fx + fy);
    }
    return d;
  }
  if (va >= vb) {
    const double vsg = va - vg, vsd = va - vb;
    const double fx = table_.d_dx(vsg, vsd), fy = table_.d_dy(vsg, vsd);
    d.i = width * table_.lookup(vsg, vsd);
    d.d_vg = -width * fx;
    d.d_va = width * (fx + fy);
    d.d_vb = -width * fy;
  } else {
    const double vsg = vb - vg, vsd = vb - va;
    const double fx = table_.d_dx(vsg, vsd), fy = table_.d_dy(vsg, vsd);
    d.i = -width * table_.lookup(vsg, vsd);
    d.d_vg = width * fx;
    d.d_vb = -width * (fx + fy);
    d.d_va = width * fy;
  }
  return d;
}

const DeviceTableSet& DeviceTableSet::half_micron() {
  static const DeviceTableSet set(Technology::half_micron());
  return set;
}

const DeviceTableSet& DeviceTableSet::half_micron_corner(
    ProcessCorner corner) {
  static const DeviceTableSet slow(
      Technology::half_micron_corner(ProcessCorner::kSlow));
  static const DeviceTableSet fast(
      Technology::half_micron_corner(ProcessCorner::kFast));
  switch (corner) {
    case ProcessCorner::kSlow: return slow;
    case ProcessCorner::kFast: return fast;
    case ProcessCorner::kTypical: break;
  }
  return half_micron();
}

}  // namespace xtalk::device
