#include "device/mosfet.hpp"

#include <algorithm>
#include <cmath>

namespace xtalk::device {

double smoothed_overdrive(const Technology& tech, MosType type, double vgs) {
  const double vth = type == MosType::kNmos ? tech.vth_n : tech.vth_p;
  const double s = tech.subthreshold_s;
  const double x = (vgs - vth) / s;
  // softplus with overflow guard: s * ln(1 + e^x)
  if (x > 40.0) return vgs - vth;
  if (x < -40.0) return s * std::exp(x);
  return s * std::log1p(std::exp(x));
}

double saturation_voltage(const Technology& tech, MosType type, double vgs) {
  const double vth = type == MosType::kNmos ? tech.vth_n : tech.vth_p;
  const double vd0 = type == MosType::kNmos ? tech.vd0_n : tech.vd0_p;
  const double vov = smoothed_overdrive(tech, type, vgs);
  const double full = tech.vdd - vth;  // overdrive at vgs = vdd
  const double ratio = std::max(vov / full, 1e-9);
  return std::max(vd0 * std::pow(ratio, tech.alpha / 2.0), 1e-3);
}

double unit_current(const Technology& tech, MosType type, double vgs,
                    double vds) {
  if (vds <= 0.0) return 0.0;
  const double beta = type == MosType::kNmos ? tech.beta_n : tech.beta_p;
  const double vov = smoothed_overdrive(tech, type, vgs);
  const double idsat = beta * std::pow(vov, tech.alpha);
  const double vdsat = saturation_voltage(tech, type, vgs);
  if (vds >= vdsat) {
    return idsat * (1.0 + tech.lambda * (vds - vdsat));
  }
  const double u = vds / vdsat;
  return idsat * (2.0 - u) * u;
}

}  // namespace xtalk::device
