// Analytic MOSFET DC model (Sakurai-Newton alpha-power law).
//
// This is the *reference* model; the delay calculator and the transient
// simulator never evaluate it directly during integration — they use the
// tabulated form (device_table.hpp), exactly as the paper describes ("the DC
// behavior of the transistors is modeled by tables", §3). Keeping the
// analytic model separate lets tests verify the tables against it.
#pragma once

#include "device/technology.hpp"

namespace xtalk::device {

enum class MosType { kNmos, kPmos };

/// Unit-width (1 m) drain-source current of a device in its "native"
/// orientation: vgs, vds >= 0 measured from the source, current flowing
/// drain -> source. Scales linearly with width.
///
/// Regions:
///  - smoothed subthreshold/overdrive via softplus (keeps Newton stable),
///  - linear region   id = idsat * (2 - vds/vdsat) * (vds/vdsat),
///  - saturation      id = idsat * (1 + lambda * (vds - vdsat)).
double unit_current(const Technology& tech, MosType type, double vgs,
                    double vds);

/// Saturation drain voltage for the given gate overdrive (used by tests).
double saturation_voltage(const Technology& tech, MosType type, double vgs);

/// Smoothed gate overdrive: softplus(vgs - vth) with the technology's
/// smoothing parameter. Exposed for tests.
double smoothed_overdrive(const Technology& tech, MosType type, double vgs);

}  // namespace xtalk::device
