// Tabulated transistor DC behaviour (paper §3, after TETA [Dartu/Pileggi]).
//
// The unit-width drain current is sampled once per technology on a fine
// (vgs, vds) grid; waveform integration and the MNA simulator only ever do
// bilinear lookups plus finite-difference derivatives, which makes Newton
// iteration cheap and, thanks to the fine discretisation, well conditioned.
//
// Terminal-symmetric evaluation: `channel_current(vg, va, vb)` returns the
// current flowing through the channel from terminal a to terminal b for an
// arbitrary terminal ordering (the MOS channel is symmetric; whichever
// terminal is at the lower potential acts as the source for NMOS, at the
// higher potential for PMOS).
#pragma once

#include <memory>

#include "device/mosfet.hpp"
#include "device/technology.hpp"
#include "util/table.hpp"

namespace xtalk::device {

/// Partial derivatives of the channel current w.r.t. the three terminal
/// voltages, used for Newton stamps.
struct CurrentDerivs {
  double i = 0.0;     ///< current a -> b [A]
  double d_vg = 0.0;  ///< dI/dVg
  double d_va = 0.0;  ///< dI/dVa
  double d_vb = 0.0;  ///< dI/dVb
};

/// DC tables for one device type of one technology, unit width (1 m).
class DeviceTable {
 public:
  DeviceTable(const Technology& tech, MosType type);

  MosType type() const { return type_; }

  /// Unit-width current in native orientation (vgs, vds from the source).
  double unit_ids(double vgs, double vds) const { return table_.lookup(vgs, vds); }

  /// Channel current a -> b for a device of width `width`, handling
  /// source/drain swap for both polarities.
  double channel_current(double width, double vg, double va, double vb) const;

  /// Channel current and its terminal derivatives (for Newton).
  CurrentDerivs channel_current_derivs(double width, double vg, double va,
                                       double vb) const;

  /// DC series-stack degradation: the current of n equal-width devices in
  /// series (all gates at VDD, top terminal at VDD/2) relative to a single
  /// device, i.e. I_stack(n) = stack_factor(n) * I_single. Used by the
  /// equivalent-inverter collapse: a chain of n devices of width W behaves
  /// like one device of width W * stack_factor(n), which is much closer to
  /// transistor-level simulation than the resistive W/n rule because the
  /// saturation-limited phase sees little source degeneration.
  /// stack_factor(1) == 1; n is clamped to the precomputed range.
  double stack_factor(std::size_t n) const;

  /// Upper edge of the sampled (vgs, vds) grid (~1.25 * vdd of the
  /// technology the table was built for). Lookups beyond it silently
  /// clamp — the engine warns (kTableRange) when an analysis supply
  /// exceeds this.
  double vmax() const { return vmax_; }

 private:
  MosType type_;
  double vmax_ = 0.0;
  util::Table2D table_;  ///< ids(vgs, vds), vgs/vds in [0, ~1.25*vdd]
  std::vector<double> stack_factors_;  ///< index n-1, n = 1..kMaxStack
};

/// The pair of tables (NMOS + PMOS) for one technology. Build once, share.
class DeviceTableSet {
 public:
  explicit DeviceTableSet(const Technology& tech)
      : tech_(&tech),
        nmos_(tech, MosType::kNmos),
        pmos_(tech, MosType::kPmos) {}

  const Technology& tech() const { return *tech_; }
  const DeviceTable& nmos() const { return nmos_; }
  const DeviceTable& pmos() const { return pmos_; }
  const DeviceTable& table(MosType t) const {
    return t == MosType::kNmos ? nmos_ : pmos_;
  }

  /// Shared table set for the default technology (built on first use).
  static const DeviceTableSet& half_micron();

  /// Shared table set for a process corner of the default technology.
  static const DeviceTableSet& half_micron_corner(ProcessCorner corner);

 private:
  const Technology* tech_;
  DeviceTable nmos_;
  DeviceTable pmos_;
};

}  // namespace xtalk::device
