// Process technology description.
//
// The paper's experiments use a 0.5 um process with two metal layers,
// VDD-era supply, a transistor threshold of 0.6 V and a *model* threshold of
// 0.2 V for the coupling model ("a Vth that has no impact on the delay
// calculation has to be chosen. In our case the chosen value is 0.2 Volts
// while having a transistor threshold voltage of 0.6 Volts").
//
// All values are in SI units.
#pragma once

#include <cstddef>

namespace xtalk::device {

/// Process corners for multi-corner analysis: transistor drive (beta) and
/// threshold shift; wires are unchanged.
enum class ProcessCorner { kSlow, kTypical, kFast };

inline const char* corner_name(ProcessCorner c) {
  switch (c) {
    case ProcessCorner::kSlow: return "slow";
    case ProcessCorner::kTypical: return "typical";
    case ProcessCorner::kFast: return "fast";
  }
  return "?";
}

/// Immutable set of process parameters. `half_micron()` is the default
/// technology used by all experiments; tests also build scaled variants.
struct Technology {
  // --- Supply and thresholds -------------------------------------------
  double vdd = 3.3;          ///< supply voltage [V]
  double vth_n = 0.6;        ///< NMOS threshold [V]
  double vth_p = 0.6;        ///< PMOS threshold magnitude [V]
  double model_vth = 0.2;    ///< coupling-model threshold [V] (paper §2)
  double temperature_c = 25.0;  ///< junction temperature [Celsius]

  // --- Sakurai-Newton alpha-power-law parameters ------------------------
  double alpha = 1.3;        ///< velocity-saturation index
  double beta_n = 82.5;      ///< NMOS drive [A / (m * V^alpha)] per um width -> per m
  double beta_p = 38.5;      ///< PMOS drive [A / (m * V^alpha)]
  double vd0_n = 1.0;        ///< NMOS saturation drain voltage at full overdrive [V]
  double vd0_p = 1.2;        ///< PMOS saturation drain voltage at full overdrive [V]
  double lambda = 0.05;      ///< channel length modulation [1/V]
  double subthreshold_s = 0.05;  ///< softplus smoothing of the overdrive [V]

  // --- Device geometry / capacitance ------------------------------------
  double l_min = 0.5e-6;         ///< drawn channel length [m]
  double cox_area = 2.5e-3;      ///< gate oxide cap [F/m^2]  (2.5 fF/um^2)
  double c_overlap = 0.3e-9;     ///< gate-S/D overlap cap [F/m of width] (0.3 fF/um)
  double c_junction = 1.0e-9;    ///< drain/source junction cap [F/m of width] (1 fF/um)
  /// Effective multiplier on receiving gate capacitance in the *timing
  /// model* (the simulator sees the physical caps and the real
  /// input-output coupling): accounts for the Miller amplification of the
  /// overlap/channel charge while the receiver itself switches.
  double miller_gate_factor = 1.3;

  // --- Interconnect (per meter of wire) ---------------------------------
  double wire_r = 0.2e6;         ///< wire resistance [Ohm/m]   (0.2 Ohm/um)
  double wire_c_ground = 0.08e-9;///< wire-to-ground cap [F/m]  (0.08 fF/um)
  double wire_c_couple = 0.05e-9;///< coupling cap at min spacing [F/m] (0.05 fF/um)
  double wire_pitch = 2.0e-6;    ///< routing track pitch [m]
  double coupling_max_tracks = 1;///< couple only to directly adjacent tracks

  // --- Device table sampling --------------------------------------------
  std::size_t table_points = 133;  ///< samples per axis (~25 mV at 3.3 V)

  /// Gate capacitance of a device of width w [F].
  double gate_cap(double width) const {
    return width * l_min * cox_area + 2.0 * width * c_overlap;
  }
  /// Drain (or source) junction capacitance of a device of width w [F].
  double junction_cap(double width) const { return width * c_junction; }

  /// The default 0.5 um / two-metal-layer technology of the paper's
  /// experiments.
  static const Technology& half_micron();

  /// Process corner of the default technology: device drive and threshold
  /// shifts (interconnect rules unchanged, so one extraction serves all
  /// corners).
  static const Technology& half_micron_corner(ProcessCorner corner);

  /// Operating-point variant of this technology for a V/T scenario corner:
  /// vdd is scaled by `vdd_scale`, carrier mobility (beta) follows the
  /// standard T^-1.5 lattice-scattering law and the thresholds drop
  /// ~2 mV/K with rising temperature. Geometry, interconnect and the
  /// alpha-power shape parameters are operating-point independent and are
  /// left untouched. scaled(1.0, temperature_c) with the current
  /// temperature returns a bitwise-identical copy — MCMM's "nominal
  /// scenario equals the base run" contract relies on that.
  Technology scaled(double vdd_scale, double new_temperature_c) const;
};

}  // namespace xtalk::device
