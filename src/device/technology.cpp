#include "device/technology.hpp"

namespace xtalk::device {

const Technology& Technology::half_micron() {
  static const Technology tech{};  // defaults are the 0.5 um values
  return tech;
}

const Technology& Technology::half_micron_corner(ProcessCorner corner) {
  static const Technology slow = [] {
    Technology t;  // typical defaults
    t.beta_n *= 0.75;
    t.beta_p *= 0.75;
    t.vth_n += 0.06;
    t.vth_p += 0.06;
    return t;
  }();
  static const Technology fast = [] {
    Technology t;
    t.beta_n *= 1.25;
    t.beta_p *= 1.25;
    t.vth_n -= 0.06;
    t.vth_p -= 0.06;
    return t;
  }();
  switch (corner) {
    case ProcessCorner::kSlow: return slow;
    case ProcessCorner::kFast: return fast;
    case ProcessCorner::kTypical: break;
  }
  return half_micron();
}

}  // namespace xtalk::device
