#include "device/technology.hpp"

#include <cmath>

namespace xtalk::device {

Technology Technology::scaled(double vdd_scale,
                              double new_temperature_c) const {
  Technology t = *this;
  // Exact no-op for the identity operating point: multiplying by 1.0 is
  // IEEE-exact, but pow()/division below are not, so skip them entirely.
  if (vdd_scale == 1.0 && new_temperature_c == temperature_c) return t;
  t.vdd = vdd * vdd_scale;
  const double t0_k = temperature_c + 273.15;
  const double t_k = new_temperature_c + 273.15;
  if (t_k != t0_k) {
    // Lattice-scattering mobility: mu(T) ~ T^-1.5. Threshold voltage drops
    // roughly 2 mV/K as temperature rises (both polarities).
    const double mobility = std::pow(t_k / t0_k, -1.5);
    t.beta_n = beta_n * mobility;
    t.beta_p = beta_p * mobility;
    const double dvth = 2.0e-3 * (t_k - t0_k);
    t.vth_n = vth_n - dvth;
    t.vth_p = vth_p - dvth;
  }
  t.temperature_c = new_temperature_c;
  return t;
}

const Technology& Technology::half_micron() {
  static const Technology tech{};  // defaults are the 0.5 um values
  return tech;
}

const Technology& Technology::half_micron_corner(ProcessCorner corner) {
  static const Technology slow = [] {
    Technology t;  // typical defaults
    t.beta_n *= 0.75;
    t.beta_p *= 0.75;
    t.vth_n += 0.06;
    t.vth_p += 0.06;
    return t;
  }();
  static const Technology fast = [] {
    Technology t;
    t.beta_n *= 1.25;
    t.beta_p *= 1.25;
    t.vth_n -= 0.06;
    t.vth_p -= 0.06;
    return t;
  }();
  switch (corner) {
    case ProcessCorner::kSlow: return slow;
    case ProcessCorner::kFast: return fast;
    case ProcessCorner::kTypical: break;
  }
  return half_micron();
}

}  // namespace xtalk::device
